#!/usr/bin/env python
"""Benchmark the fast-tier hot-path kernels and write BENCH_hotpath.json.

Times each vectorized kernel against its in-tree pre-optimization
reference on a synthetic mixed window (10M lines by default):

* Rubix-D chunk translation (gather vs per-engine masked loop),
* trace analysis (counting kernels vs argsort/np.unique),
* remap sweep advancement (closed form vs per-episode walk),
* the end-to-end dynamic window combining all three.

``--backend`` times one specific kernel tier (reference / numpy /
numba) and ``--all-backends`` times every tier the interpreter can run,
reporting a per-kernel matrix (the numba tier is JIT-warmed before
timing and silently-absent numba is *reported*, never timed as its
fallback).

Every implementation pair/backend is asserted bit-identical before its
timing is reported, so this doubles as an equivalence regression check
-- ``--quick`` runs a small window for exactly that purpose in CI (no
timing gate).

Reports append to a ``{"history": [...]}`` list in the output file, so
successive runs (different backends, machines, or dates) accumulate
instead of overwriting each other; a pre-history single-report file is
wrapped on first append.

Usage:
    PYTHONPATH=src python scripts/bench_hotpath.py                  # full 10M run
    PYTHONPATH=src python scripts/bench_hotpath.py --quick          # CI equivalence
    PYTHONPATH=src python scripts/bench_hotpath.py --all-backends   # tier matrix
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.perf.backends import BACKENDS  # noqa: E402
from repro.perf.hotpath_bench import (  # noqa: E402
    DEFAULT_LINES,
    DEFAULT_SEED,
    format_backend_report,
    format_report,
    run_backend_benchmarks,
    run_benchmarks,
)

#: --quick window length: big enough that every kernel takes a vector
#: path (multiple chunks, an epoch-crossing remap call), small enough
#: for a few seconds of CI time.
QUICK_LINES = 400_000


def append_history(path: str, report: dict) -> None:
    """Append ``report`` to the ``history`` list in the JSON file at ``path``.

    A legacy file holding one bare report is wrapped into history form
    first; an unreadable file is replaced (benchmarks must not die on a
    corrupt artifact).
    """
    history = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            if isinstance(existing, dict) and isinstance(existing.get("history"), list):
                history = existing["history"]
            elif isinstance(existing, dict) and existing:
                history = [existing]
        except (OSError, json.JSONDecodeError):
            history = []
    history.append(report)
    with open(path, "w") as fh:
        json.dump({"history": history}, fh, indent=2)
        fh.write("\n")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--lines",
        type=int,
        default=DEFAULT_LINES,
        help=f"window length in line addresses (default {DEFAULT_LINES:,})",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per kernel; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--seed",
        type=lambda s: int(s, 0),
        default=DEFAULT_SEED,
        help="trace/mapping seed (default %(default)#x)",
    )
    parser.add_argument(
        "--gang-size", type=int, default=4, help="Rubix-D gang size (default 4)"
    )
    parser.add_argument(
        "--segments", type=int, default=1, help="v-segments per v-group (default 1)"
    )
    parser.add_argument(
        "--chunk-lines",
        type=int,
        default=1 << 20,
        help="dynamic-window chunk size (default 2^20)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="time one specific kernel tier (still equivalence-checked"
        " against the reference tier)",
    )
    parser.add_argument(
        "--all-backends",
        action="store_true",
        help="time every runnable kernel tier and report the matrix",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"equivalence-check mode: {QUICK_LINES:,} lines, 1 rep (for CI)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="report path (default BENCH_hotpath.json); '-' skips writing",
    )
    args = parser.parse_args(argv)
    if args.backend and args.all_backends:
        parser.error("--backend and --all-backends are mutually exclusive")

    lines = QUICK_LINES if args.quick else args.lines
    reps = 1 if args.quick else args.reps
    common = dict(
        lines=lines,
        reps=reps,
        seed=args.seed,
        chunk_lines=args.chunk_lines,
        gang_size=args.gang_size,
        segments=args.segments,
    )
    if args.all_backends or args.backend:
        backends = None
        if args.backend:
            # Always pair the requested tier with the reference tier so
            # the in-run bit-identity assertion still has its anchor.
            backends = tuple(dict.fromkeys(["reference", args.backend]))
        report = run_backend_benchmarks(backends=backends, **common)
        report["mode"] = "backends"
        print(format_backend_report(report))
    else:
        report = run_benchmarks(**common)
        report["mode"] = "pair"
        print(format_report(report))
    report["config"]["quick"] = bool(args.quick)
    report["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    if args.out != "-":
        append_history(args.out, report)
        print(f"appended to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
