#!/usr/bin/env python
"""Prove the numba->numpy backend fallback is transparent and bit-identical.

On a machine WITHOUT numba installed (the CI baseline image), requesting
``REPRO_KERNEL_BACKEND=numba`` must (a) emit one
:class:`~repro.perf.backends.BackendFallbackWarning`, (b) resolve to the
numpy tier, and (c) produce campaign records byte-identical to an
explicit ``backend="numpy"`` run.  On a machine WITH numba the same
request must run the compiled tier and still match numpy exactly.

Exit status 0 means the fallback contract holds; any assertion failure
is a CI failure.
"""

import os
import sys
import warnings

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.campaign import Campaign, MappingSpec  # noqa: E402
from repro.perf import backends  # noqa: E402


def small_campaign(**overrides) -> Campaign:
    kwargs = dict(
        workloads=["xz"],
        mappings=[MappingSpec("rubix-d", gang_size=4, remap_rate=0.01)],
        schemes=["aqua"],
        thresholds=[128],
        scale=0.02,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


def main() -> int:
    have_numba = backends.numba_available()
    print(f"numba installed: {have_numba}")

    baseline = small_campaign(backend="numpy").run()
    assert all(r["status"] == "ok" for r in baseline), "numpy baseline failed"

    # Request the numba tier via the environment, exactly as a user would.
    backends._reset_probe_for_tests()
    os.environ[backends.KERNEL_BACKEND_ENV] = "numba"
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolved = backends.resolve_backend(None)
            records = small_campaign().run()
    finally:
        del os.environ[backends.KERNEL_BACKEND_ENV]
        backends._reset_probe_for_tests()

    fallbacks = [w for w in caught if issubclass(w.category, backends.BackendFallbackWarning)]
    if have_numba:
        assert resolved == "numba", f"expected numba tier, resolved {resolved!r}"
        assert not fallbacks, "fallback warning fired although numba is installed"
        print("compiled numba tier ran; checking identity against numpy...")
    else:
        assert resolved == "numpy", f"expected numpy fallback, resolved {resolved!r}"
        assert fallbacks, "no BackendFallbackWarning on a numba-less machine"
        print(f"fell back to numpy with warning: {fallbacks[0].message}")

    assert records == baseline, "requested-numba records diverge from numpy"
    print(f"OK: {len(records)} records bit-identical across the requested tiers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
