#!/usr/bin/env python3
"""CI smoke test for the parallel campaign engine.

Exercises the parallel/resilience contract end to end on a tiny grid:

1. a serial run establishes the expected records;
2. a serial run with an injected crash after 3 cells leaves a partial
   checkpoint journal;
3. a parallel resume (``workers=2``) from that journal completes the
   grid and must reproduce the expected records exactly;
4. a fresh all-parallel run must also reproduce them.

Exit status 0 on success, 1 on any mismatch.  No timing assertions:
this validates correctness, not speedup (CI may have one core).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments.campaign import Campaign, MappingSpec
from repro.experiments.common import get_simulator
from repro.obs import runtime as obs_runtime
from repro.obs.manifest import RunManifest
from repro.resilience.faults import FaultPlan, FaultySimulator, SimulatedCrash
from repro.resilience.journal import CheckpointJournal


def make_campaign() -> Campaign:
    return Campaign(
        workloads=["xz", "lbm"],
        mappings=[
            MappingSpec("coffeelake"),
            MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
        ],
        schemes=["blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )  # 2 x 2 x 1 x 2 = 8 cells


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    # Telemetry rides along when REPRO_TELEMETRY_DIR is set (the CI
    # validation stage does this); disabled, it costs one boolean per
    # instrumented call site.
    manifest = None
    if obs_runtime.telemetry_dir() is not None:
        manifest = RunManifest.create(
            "parallel_smoke", config={"cells": 8, "workers": 2}
        )

    expected = make_campaign().run()
    print(f"serial: {len(expected)} records")

    with tempfile.TemporaryDirectory(prefix="rubix-smoke-") as tmp:
        journal_path = Path(tmp) / "campaign.jsonl"

        # Simulated mid-sweep kill: crash after 3 cells, journal intact.
        crashing = FaultySimulator(get_simulator(), FaultPlan(crash_after_cells=3))
        try:
            make_campaign().run(simulator=crashing, journal=journal_path)
        except SimulatedCrash:
            pass
        else:
            return fail("fault injection did not crash the run")
        completed = len(CheckpointJournal(journal_path).completed())
        print(f"crashed after {completed} journaled cells")
        if completed != 3:
            return fail(f"expected 3 journaled cells, found {completed}")

        # Parallel resume must finish the grid and match the serial run.
        resumed = make_campaign()
        records = resumed.run(workers=2, resume_from=journal_path)
        if records != expected:
            return fail("parallel resume records differ from serial run")
        if resumed.cells_executed != len(expected) - 3:
            return fail(
                f"resume re-ran {resumed.cells_executed} cells,"
                f" expected {len(expected) - 3}"
            )
        print(f"parallel resume: {resumed.cells_executed} remaining cells, records match")

        # And a fresh parallel run from scratch, with a shared disk cache.
        fresh = make_campaign().run(
            workers=2, stats_cache_dir=Path(tmp) / "stats-cache"
        )
        if fresh != expected:
            return fail("fresh parallel records differ from serial run")
        print("fresh parallel run: records match")

    if manifest is not None:
        obs_runtime.write_telemetry(manifest=manifest)
        print(f"telemetry written to {obs_runtime.telemetry_dir()}")

    print("OK: parallel smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
