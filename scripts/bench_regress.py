#!/usr/bin/env python3
"""Bench regression gate over the hot-path benchmark history.

``scripts/bench_hotpath.py`` appends every report to a ``history`` list
(``BENCH_hotpath.json`` by default).  This script compares the newest
entry's per-kernel timings against the *best* (fastest) prior entry
measured under the same configuration and fails when any kernel got
more than ``--threshold`` percent slower -- the creeping-regression
check a bit-equivalence assertion cannot provide.

Both report shapes in the history are understood:

* pair reports: ``kernels.<k>.optimized_s`` (legacy vs optimized);
* backend reports (``mode: "backends"``): ``kernels.<k>.seconds.<b>``,
  scored on the fastest non-reference backend (falling back to
  ``reference`` when it is the only one).

Entries are only compared when their ``config`` matches (same line
count, reps, seed, chunking, quick flag, ...), so a --quick run can
never be judged against a full run.  With fewer than two comparable
entries the gate passes vacuously: a fresh clone has nothing to
regress against.

CI runs this advisorily after the quick bench stage (timings on shared
CI hardware are noisy); locally it is a hard gate for perf work.

Usage:  python scripts/bench_regress.py [--history PATH]
                                        [--threshold PCT] [--quiet]
Exit status 0 when no kernel regressed, 1 otherwise, 2 on a bad file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
DEFAULT_THRESHOLD_PCT = 15.0


def load_history(path: Path) -> list:
    """The report list in a history file (legacy bare reports wrapped)."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    if isinstance(data, dict):
        return [data]
    raise ValueError(f"{path} holds neither a history nor a report")


def kernel_seconds(entry: dict) -> dict:
    """Normalize one history entry to ``{kernel: best seconds}``.

    Pair reports score the optimized kernel; backend reports score the
    fastest non-reference backend, so adding a faster tier later (e.g.
    numba) tightens rather than confuses the baseline.  Kernels that
    cannot be scored are skipped.
    """
    scored = {}
    for kernel, result in entry.get("kernels", {}).items():
        if not isinstance(result, dict):
            continue
        if isinstance(result.get("optimized_s"), (int, float)):
            scored[kernel] = float(result["optimized_s"])
            continue
        seconds = result.get("seconds")
        if isinstance(seconds, dict) and seconds:
            tiers = {
                name: float(value)
                for name, value in seconds.items()
                if isinstance(value, (int, float))
            }
            fast = {k: v for k, v in tiers.items() if k != "reference"} or tiers
            if fast:
                scored[kernel] = min(fast.values())
    return scored


def check_regressions(history: list, threshold_pct: float) -> tuple:
    """Compare the newest entry to the best comparable prior entries.

    Returns ``(regressions, comparisons)`` where ``regressions`` is a
    list of human-readable failures and ``comparisons`` a list of
    ``(kernel, newest_s, best_prior_s, delta_pct)`` rows actually
    compared (empty when no prior entry shares the newest config).
    """
    if len(history) < 2:
        return [], []
    newest = history[-1]
    config = newest.get("config")
    newest_seconds = kernel_seconds(newest)
    best_prior: dict = {}
    for entry in history[:-1]:
        if entry.get("config") != config:
            continue
        for kernel, seconds in kernel_seconds(entry).items():
            if kernel not in best_prior or seconds < best_prior[kernel]:
                best_prior[kernel] = seconds
    regressions, comparisons = [], []
    for kernel, now_s in sorted(newest_seconds.items()):
        prior_s = best_prior.get(kernel)
        if prior_s is None or prior_s <= 0:
            continue
        delta_pct = (now_s / prior_s - 1.0) * 100.0
        comparisons.append((kernel, now_s, prior_s, delta_pct))
        if delta_pct > threshold_pct:
            regressions.append(
                f"{kernel}: {now_s:.6f}s vs best prior {prior_s:.6f}s"
                f" (+{delta_pct:.1f}% > {threshold_pct:.0f}% threshold)"
            )
    return regressions, comparisons


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history",
        type=Path,
        default=DEFAULT_HISTORY,
        help=f"bench history file (default: {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        help="regression threshold in percent (default: 15)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print failures only"
    )
    args = parser.parse_args(argv)
    try:
        history = load_history(args.history)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot read bench history: {error}", file=sys.stderr)
        return 2
    regressions, comparisons = check_regressions(history, args.threshold)
    if not args.quiet:
        if not comparisons:
            print(
                f"OK: no prior entry comparable to the newest config in"
                f" {args.history} ({len(history)} entries); nothing to gate"
            )
        for kernel, now_s, prior_s, delta_pct in comparisons:
            print(
                f"{kernel:>16s}: {now_s:.6f}s vs best {prior_s:.6f}s"
                f" ({delta_pct:+.1f}%)"
            )
    if regressions:
        for line in regressions:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    if comparisons and not args.quiet:
        print(f"OK: no kernel regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
