#!/usr/bin/env python3
"""CI smoke test for the fault-tolerant campaign service.

Exercises the leased-scheduling contract end to end on a tiny pair of
overlapping grids:

1. serial runs establish the expected records for two tenants whose
   grids share cells;
2. both campaigns are submitted concurrently to one
   :class:`CampaignService` while the seeded chaos harness kills
   workers mid-campaign (the schedule is precomputed and asserted, so
   the smoke cannot silently degrade into a no-failure run);
3. the converged results must match the serial references exactly,
   the journal must hold exactly one commit per distinct cell digest
   (overlap deduped, kills notwithstanding), and the run manifest must
   record the replacement workers that the kills forced;
4. a restarted service on the same journal must reproduce the records
   without re-dispatching anything.

Exit status 0 on success, 1 on any mismatch.  When REPRO_TELEMETRY_DIR
is set (the CI validation stage does this), telemetry artifacts ride
along for scripts/validate_telemetry.py.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments.campaign import Campaign, MappingSpec
from repro.obs import runtime as obs_runtime
from repro.obs.manifest import RunManifest
from repro.resilience.journal import CheckpointJournal
from repro.service import (
    ChaosSpec,
    ServiceConfig,
    cell_digest,
    planned_faults,
    run_service,
)

MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
]

#: Seed 0 is verified below to kill at least two workers on this grid.
CHAOS = ChaosSpec(
    seed=0,
    kill_before_frac=0.25,
    kill_after_frac=0.15,
    duplicate_frac=0.2,
    reorder_every=3,
)

CONFIG = ServiceConfig(
    workers=2,
    lease_timeout_s=2.0,
    heartbeat_interval_s=0.2,
    max_worker_restarts=32,
)


def tenant_campaigns() -> tuple:
    alice = Campaign(
        workloads=["xz", "lbm"],
        mappings=MAPPINGS,
        schemes=["blockhammer"],
        thresholds=[128],
        scale=0.05,
    )  # 4 cells
    bob = Campaign(
        workloads=["xz"],
        mappings=MAPPINGS,
        schemes=["blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )  # 4 cells, 2 shared with alice
    return alice, bob


def union_digests(campaigns) -> set:
    union = set()
    for campaign in campaigns:
        payload = campaign.parallel_payload()
        union |= {
            cell_digest(payload, campaign.cell_key(*cell))
            for cell in campaign.cells()
        }
    return union


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    alice, bob = tenant_campaigns()
    keys = sorted(
        {alice.cell_key(*c) for c in alice.cells()}
        | {bob.cell_key(*c) for c in bob.cells()}
    )
    plan = [d for _, d in planned_faults(CHAOS, keys)]
    kills = sum(d.action in ("kill-before", "kill-after") for d in plan)
    print(f"chaos schedule over {len(keys)} cells: {kills} kills,"
          f" {sum(d.duplicate for d in plan)} duplicated completions")
    if kills < 1:
        return fail("chaos seed no longer kills any worker; pick a new seed")

    expected_alice = alice.run()
    expected_bob = bob.run()
    print(f"serial references: alice {len(expected_alice)}, bob {len(expected_bob)} records")

    manifest = RunManifest.create(
        "service_smoke", config={"cells": len(keys), "workers": CONFIG.workers}
    )
    with tempfile.TemporaryDirectory(prefix="rubix-service-smoke-") as tmp:
        journal_path = Path(tmp) / "service.jsonl"
        results = run_service(
            tenant_campaigns(),
            config=CONFIG,
            journal=journal_path,
            chaos=CHAOS,
            manifest=manifest,
            tenants=["alice", "bob"],
        )
        if results[0] != expected_alice:
            return fail("alice's chaos-run records differ from her serial run")
        if results[1] != expected_bob:
            return fail("bob's chaos-run records differ from his serial run")
        print("chaos run: both tenants match their serial references")

        union = union_digests([alice, bob])
        entries = CheckpointJournal(journal_path).load()
        if len(entries) != len(union):
            return fail(
                f"journal holds {len(entries)} commits for {len(union)} cells"
                " (exactly-once violated or dedupe broken)"
            )
        if {entry["key"] for entry in entries} != union:
            return fail("journal digests do not cover the submitted grids")
        print(f"journal: exactly one commit per cell ({len(entries)} total,"
              f" {sum(c.size() for c in (alice, bob)) - len(union)} deduped)")

        respawns = [w for w in manifest.workers if w["replaces"]]
        if not respawns:
            return fail("chaos killed workers but the manifest shows no respawns")
        print(f"recovery: {len(respawns)} replacement worker(s) recorded in manifest")

        # Restarted scheduler on the same journal: byte-identical, no recompute.
        resumed = run_service(
            tenant_campaigns(),
            config=ServiceConfig(workers=2),
            journal=journal_path,
            tenants=["alice", "bob"],
        )
        if resumed != results:
            return fail("restarted scheduler records differ from original run")
        if CheckpointJournal(journal_path).load() != entries:
            return fail("resume mutated the journal (should be a pure replay)")
        print("restart: resumed byte-identically without recompute")

    if obs_runtime.telemetry_dir() is not None:
        obs_runtime.write_telemetry(manifest=manifest)
        print(f"telemetry written to {obs_runtime.telemetry_dir()}")

    print("OK: service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
