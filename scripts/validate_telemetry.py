#!/usr/bin/env python3
"""Validate a telemetry directory against the metric/manifest schema.

CI runs this after a telemetry-enabled ``scripts/parallel_smoke.py``:
the manifest must be complete and finalized, every emitted metric name,
label key, and kind must match the catalog in ``repro.obs.schema``, the
required campaign metrics must actually have fired, and every span
event must use a declared span name.  Instrumentation and catalog
therefore cannot drift apart silently.

Usage:  python scripts/validate_telemetry.py DIR [--no-required]
Exit status 0 when the directory validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.schema import REQUIRED_CAMPAIGN_METRICS, validate_telemetry_dir


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", help="telemetry directory to validate")
    parser.add_argument(
        "--no-required",
        action="store_true",
        help="skip the required-campaign-metrics check (schema check only)",
    )
    args = parser.parse_args(argv)
    required = () if args.no_required else REQUIRED_CAMPAIGN_METRICS
    errors = validate_telemetry_dir(args.directory, required=required)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: telemetry in {args.directory} validates against the schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
