#!/usr/bin/env python3
"""Validate a telemetry directory against the metric/manifest schema.

CI runs this after a telemetry-enabled ``scripts/parallel_smoke.py``:
the manifest must be complete and finalized, every emitted metric name,
label key, and kind must match the catalog in ``repro.obs.schema``, the
required campaign metrics must actually have fired, and every span
event must use a declared span name.  Instrumentation and catalog
therefore cannot drift apart silently.

With ``--traces`` the check also asserts distributed trace-tree
completeness: every non-root span's parent span exists and every trace
has exactly one root.  Only sound for runs whose processes all exited
cleanly -- a chaos-killed worker legitimately leaves unfinished spans.

Usage:  python scripts/validate_telemetry.py DIR [--no-required] [--traces]
Exit status 0 when the directory validates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.schema import REQUIRED_CAMPAIGN_METRICS, validate_telemetry_dir


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", help="telemetry directory to validate")
    parser.add_argument(
        "--no-required",
        action="store_true",
        help="skip the required-campaign-metrics check (schema check only)",
    )
    parser.add_argument(
        "--traces",
        action="store_true",
        help="also assert trace-tree completeness (one root per trace,"
        " no orphaned spans); use only on clean-exit runs",
    )
    args = parser.parse_args(argv)
    required = () if args.no_required else REQUIRED_CAMPAIGN_METRICS
    errors = validate_telemetry_dir(
        args.directory, required=required, traces=args.traces
    )
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(f"OK: telemetry in {args.directory} validates against the schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
