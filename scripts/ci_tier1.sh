#!/usr/bin/env bash
# Tier-1 verification with hang protection.
#
# Runs the repo's tier-1 test command (see ROADMAP.md) under a hard
# wall-clock ceiling, so a wedged simulation fails CI instead of
# stalling it.  Per-test timeouts come from [tool.pytest.ini_options]
# in pyproject.toml (pytest-timeout, or the conftest SIGALRM fallback);
# this wrapper bounds the whole suite.
#
# Usage: scripts/ci_tier1.sh [extra pytest args...]
#   CI_TIER1_TIMEOUT=seconds   overall budget (default 1800)
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${CI_TIER1_TIMEOUT:-1800}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if command -v timeout >/dev/null 2>&1; then
    exec timeout --kill-after=30 "$BUDGET" python -m pytest -x -q "$@"
fi
exec python -m pytest -x -q "$@"
