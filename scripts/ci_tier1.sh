#!/usr/bin/env bash
# Tier-1 verification with hang protection.
#
# Stage 1 runs the repo's tier-1 test command (see ROADMAP.md); stage 2
# smoke-tests the parallel campaign engine (tiny grid, workers=2,
# crash + journal-resume check -- scripts/parallel_smoke.py); stage 3
# runs the hot-path kernel benchmark in --quick mode, which asserts the
# optimized kernels stay bit-identical to their in-tree references (an
# equivalence check only -- no timing gate), followed by an *advisory*
# bench-history regression gate (scripts/bench_regress.py, >15% per
# kernel); stage 3b checks the kernel
# backend tiers the same way (--all-backends) and proves the numba
# fallback is transparent (scripts/backend_fallback_check.py); stage 4
# re-runs the
# parallel smoke with telemetry enabled and validates the emitted
# manifest + metric snapshots against the schema catalog
# (scripts/validate_telemetry.py), so instrumentation and catalog
# cannot drift apart; stage 5 smoke-tests the fault-tolerant campaign
# service (two overlapping tenants, seeded chaos killing workers,
# exactly-once journal, resume -- scripts/service_smoke.py) with
# telemetry enabled and validates its artifacts the same way; stage 6
# smoke-tests the playbook sweep fuzzer (seeded tiny sweep + bisection,
# exact re-run reproducibility, Rubix-S blind-vs-informed contrast --
# scripts/fuzz_smoke.py), schema-validating its telemetry too.  All run
# under a hard wall-clock ceiling, so a
# wedged simulation fails CI instead of stalling it.  Per-test timeouts
# come from [tool.pytest.ini_options] in pyproject.toml (pytest-timeout,
# or the conftest SIGALRM fallback); this wrapper bounds each whole
# stage.
#
# Usage: scripts/ci_tier1.sh [extra pytest args...]
#   CI_TIER1_TIMEOUT=seconds   pytest stage budget (default 1800)
#   CI_SMOKE_TIMEOUT=seconds   parallel smoke budget (default 300,
#                              also used by the telemetry stage)
#   CI_BENCH_TIMEOUT=seconds   hot-path equivalence budget (default 300)
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${CI_TIER1_TIMEOUT:-1800}"
SMOKE_BUDGET="${CI_SMOKE_TIMEOUT:-300}"
BENCH_BUDGET="${CI_BENCH_TIMEOUT:-300}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

run_bounded() {
    local budget="$1"
    shift
    if command -v timeout >/dev/null 2>&1; then
        timeout --kill-after=30 "$budget" "$@"
    else
        "$@"
    fi
}

run_bounded "$BUDGET" python -m pytest -x -q "$@"
run_bounded "$SMOKE_BUDGET" python scripts/parallel_smoke.py
run_bounded "$BENCH_BUDGET" python scripts/bench_hotpath.py --quick --out -

# Advisory regression gate over the committed bench history: compares
# the newest entry against the best comparable prior entry per kernel
# (>15% slower fails).  Advisory here because CI timing is noisy; run
# scripts/bench_regress.py directly as a hard gate for perf work.
run_bounded 60 python scripts/bench_regress.py \
    || echo "WARN: bench_regress reported a >15% kernel regression (advisory)"

# Stage 3b: kernel-backend tier check -- every available backend
# (reference, numpy, and numba when installed) must produce the same
# window bit-for-bit (asserted in-run by the harness), and requesting
# the numba tier on a machine without numba must fall back to numpy
# transparently with identical campaign records.
run_bounded "$BENCH_BUDGET" python scripts/bench_hotpath.py --quick --all-backends --out -
run_bounded "$SMOKE_BUDGET" python scripts/backend_fallback_check.py

# Stage 4: telemetry round-trip -- run the same smoke with telemetry
# enabled, then validate every emitted artifact against the schema.
TELEMETRY_DIR="$(mktemp -d -t rubix-telemetry-XXXXXX)"
trap 'rm -rf "$TELEMETRY_DIR"' EXIT
run_bounded "$SMOKE_BUDGET" env REPRO_TELEMETRY_DIR="$TELEMETRY_DIR" \
    python scripts/parallel_smoke.py
run_bounded 60 python scripts/validate_telemetry.py "$TELEMETRY_DIR"

# Stage 5: campaign-service smoke -- overlapping tenants under seeded
# chaos (worker kills, duplicated completions), exactly-once journal,
# chaos-free resume; telemetry validated like stage 4.
SERVICE_TELEMETRY_DIR="$(mktemp -d -t rubix-service-telemetry-XXXXXX)"
trap 'rm -rf "$TELEMETRY_DIR" "$SERVICE_TELEMETRY_DIR"' EXIT
run_bounded "$SMOKE_BUDGET" env REPRO_TELEMETRY_DIR="$SERVICE_TELEMETRY_DIR" \
    python scripts/service_smoke.py
run_bounded 60 python scripts/validate_telemetry.py "$SERVICE_TELEMETRY_DIR"

# Stage 6: sweep-fuzzer smoke -- deterministic playbook sweep, known
# minimal pattern, exact re-run reproducibility.  scheme="none" means
# the mitigation metrics legitimately never fire, so the telemetry gets
# the schema-only check.
FUZZ_TELEMETRY_DIR="$(mktemp -d -t rubix-fuzz-telemetry-XXXXXX)"
trap 'rm -rf "$TELEMETRY_DIR" "$SERVICE_TELEMETRY_DIR" "$FUZZ_TELEMETRY_DIR"' EXIT
run_bounded "$SMOKE_BUDGET" env REPRO_TELEMETRY_DIR="$FUZZ_TELEMETRY_DIR" \
    python scripts/fuzz_smoke.py
run_bounded 60 python scripts/validate_telemetry.py "$FUZZ_TELEMETRY_DIR" --no-required

# Stage 7: distributed-service smoke -- scheduler on an ephemeral
# loopback port, three spawned socket workers, seeded wire chaos
# (dropped/corrupt/torn frames, severed connections), exactly-once
# journal with forced re-dispatch, and the zero-worker degraded-mode
# fallback (scripts/distributed_smoke.py); telemetry validated like
# stage 4 -- the service.transport.* metrics ride along.
DIST_TELEMETRY_DIR="$(mktemp -d -t rubix-dist-telemetry-XXXXXX)"
trap 'rm -rf "$TELEMETRY_DIR" "$SERVICE_TELEMETRY_DIR" "$FUZZ_TELEMETRY_DIR" "$DIST_TELEMETRY_DIR"' EXIT
run_bounded "$SMOKE_BUDGET" env REPRO_TELEMETRY_DIR="$DIST_TELEMETRY_DIR" \
    python scripts/distributed_smoke.py
# --traces: every process in the distributed run exits cleanly, so the
# assembled span trees must be complete -- one root per trace, every
# parent span present (the smoke also hits /metrics//healthz//status
# mid-run and asserts the scheduler+workers share one rooted trace).
run_bounded 60 python scripts/validate_telemetry.py "$DIST_TELEMETRY_DIR" --traces
