#!/usr/bin/env python3
"""CI smoke test for the playbook sweep fuzzer.

Exercises the declarative-attack pipeline end to end, deterministically:

1. a double-sided playbook sweep over ``rounds`` (and the Half-Double
   overlay period) expands into a cell grid and runs through the
   campaign engine;
2. the fuzzer must flag exactly the cells whose per-row pressure
   crosses the hot-row threshold, and bisect to the *known* minimal
   pattern: 64 rounds is the smallest swept value giving both aggressor
   rows >= 64 activations;
3. a second, independent run must reproduce the identical result
   (records, minimal overrides, probe count) -- seeded and pure;
4. the same minimal double-sided pattern evaluated under Rubix-S must
   go cold (the paper's point: randomized mapping dissipates blind
   pressure), while a full-knowledge sweep re-targeted at Rubix-S
   stays hot.

Exit status 0 on success, 1 on any mismatch.  Telemetry rides along
when REPRO_TELEMETRY_DIR is set (validated by the CI telemetry stage).
"""

from __future__ import annotations

import sys

from repro.experiments.campaign import MappingSpec
from repro.obs import runtime as obs_runtime
from repro.obs.manifest import RunManifest
from repro.workloads.attacks import double_sided_spec
from repro.workloads.fuzzer import FuzzConfig, fuzz

SWEEP = {"rounds": [8, 16, 32, 64, 128, 256]}
EXPECTED_MINIMAL = {"rounds": 64}
EXPECTED_HOT = 3  # 64, 128, 256


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def run_once(mapping: MappingSpec):
    base = double_sided_spec(victim_row=1000, activations_per_side=16)
    return fuzz(
        base,
        SWEEP,
        config=FuzzConfig(mapping=mapping, min_hot_rows=2, metric="hot_rows_64"),
    )


def main() -> int:
    manifest = None
    if obs_runtime.telemetry_dir() is not None:
        manifest = RunManifest.create(
            "fuzz_smoke", config={"sweep": SWEEP, "expected": EXPECTED_MINIMAL}
        )

    first = run_once(MappingSpec("coffeelake"))
    print(
        f"sweep: {len(first.cells)} cells, {len(first.hot_cells)} hot,"
        f" minimal {first.minimal_overrides} in {first.probes} probes"
    )
    if len(first.hot_cells) != EXPECTED_HOT:
        return fail(f"expected {EXPECTED_HOT} hot cells, got {len(first.hot_cells)}")
    if first.minimal_overrides != EXPECTED_MINIMAL:
        return fail(
            f"bisection found {first.minimal_overrides}, expected {EXPECTED_MINIMAL}"
        )
    if int(first.minimal_record["hot_rows_64"]) < 2:
        return fail("minimal record lost its hot rows")

    second = run_once(MappingSpec("coffeelake"))
    if second.minimal_overrides != first.minimal_overrides:
        return fail("re-run found a different minimal pattern (non-deterministic)")
    if second.probes != first.probes:
        return fail(
            f"re-run spent {second.probes} probes vs {first.probes} (non-deterministic)"
        )
    if [c["record"] for c in second.cells] != [c["record"] for c in first.cells]:
        return fail("re-run produced different cell records (non-deterministic)")
    print("re-run: identical records, minimal pattern, and probe count")

    # The blind half of the Rubix story: the Coffee-Lake-targeted
    # minimal pattern cannot concentrate pressure under Rubix-S ...
    blind = run_once(MappingSpec("rubix-s", gang_size=4))
    if blind.hot_cells:
        return fail(
            f"coffeelake-targeted sweep stayed hot under rubix-s"
            f" ({len(blind.hot_cells)} cells)"
        )
    print("rubix-s (blind): 0 hot cells -- randomized mapping dissipates the sweep")

    # ... while an attacker who knows the Rubix-S mapping (same seed as
    # the evaluation grid's mapping) still lands the pattern.
    informed_base = double_sided_spec(victim_row=1000, activations_per_side=16)
    informed_base["target_mapping"] = {"kind": "rubix-s", "gang_size": 4}
    informed = fuzz(
        informed_base,
        SWEEP,
        config=FuzzConfig(
            mapping=MappingSpec("rubix-s", gang_size=4), min_hot_rows=2
        ),
    )
    if informed.minimal_overrides != EXPECTED_MINIMAL:
        return fail(
            f"informed rubix-s sweep found {informed.minimal_overrides},"
            f" expected {EXPECTED_MINIMAL}"
        )
    print("rubix-s (informed): minimal pattern matches -- construction mapping honored")

    if manifest is not None:
        obs_runtime.write_telemetry(manifest=manifest)
        print(f"telemetry written to {obs_runtime.telemetry_dir()}")
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
