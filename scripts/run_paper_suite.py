#!/usr/bin/env python3
"""Run the full experiment suite at publication scales.

Serial mode shares one process, so every experiment reuses the trace and
window-statistics caches -- the whole suite costs one analysis pass per
(workload, mapping) configuration.  ``--workers N`` fans the suite out
over a process pool instead; pair it with ``--stats-cache DIR`` (or let
this script create a temporary one, the default) so the workers share
one on-disk analysis cache rather than each repeating the passes.
Output is the EXPERIMENTS.md data either way, in suite order.

``--telemetry-dir DIR`` additionally writes a run manifest, metric
snapshots, and span event streams to DIR (see docs/OBSERVABILITY.md);
``--log-json PATH`` mirrors the console status records to a JSONL file.

Usage:  python scripts/run_paper_suite.py [output.txt] [--workers N]
                                          [--stats-cache DIR]
                                          [--telemetry-dir DIR]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time

from repro.experiments.runner import _experiment_task, run_experiment
from repro.obs import runtime as obs_runtime
from repro.obs.logs import QUIET, VERBOSE
from repro.obs.manifest import RunManifest
from repro.obs.runtime import METRICS, get_logger
from repro.parallel.cache import STATS_CACHE_ENV

log = get_logger("paper_suite")

#: (experiment id, scale, workload limit) -- None = experiment default.
SUITE = [
    ("fig1a", 1.0, None),
    ("fig4", 1.0, None),
    ("table2", 1.0, None),
    ("fig7", 1.0, None),
    ("table3", 0.5, None),
    ("fig1c", 0.4, None),
    ("fig3", 0.4, None),
    ("fig8", 0.4, None),
    ("fig9", 0.4, None),
    ("sec48", 0.4, None),
    ("sec49", 0.4, None),
    ("fig12", 0.4, None),
    ("fig13", 0.4, None),
    ("table4", 0.4, None),
    ("fig14", 0.4, None),
    ("sec57", 0.4, None),
    ("table5", 0.4, None),
    ("sec61", 0.4, None),
    ("sec62", 0.4, None),
    ("fig16", 0.5, None),
    ("fig17", 0.4, None),
    ("fig8mix", 0.25, None),
    ("fig15", 0.2, None),
    ("sec73", 0.4, None),
    ("actdist", 0.3, None),
    ("indram-escape", 1.0, None),
    ("abl-pitfall", 0.3, None),
    ("abl-stride-attack", 1.0, None),
    ("abl-remap-rate", 0.2, None),
    ("abl-segments", 1.0, None),
    ("abl-tracker", 1.0, None),
    ("abl-cipher-rounds", 0.2, None),
    ("abl-reveng", 1.0, None),
]


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default=None, help="output file (stdout if omitted)")
    parser.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = in-process)"
    )
    parser.add_argument(
        "--stats-cache",
        metavar="DIR",
        default=None,
        help="shared window-statistics cache directory (parallel runs"
        " default to a temporary one, removed afterwards)",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--verbose", action="store_true", help="print debug-level records too"
    )
    verbosity.add_argument(
        "--quiet", action="store_true", help="suppress console status output"
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="mirror structured log records to this JSONL file",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="enable telemetry and write run artifacts (manifest,"
        " metric snapshots, event streams) to DIR",
    )
    return parser.parse_args(argv)


def _results(args):
    """Yield (experiment_id, scale, result, elapsed) in suite order."""
    if args.workers == 1:
        for experiment_id, scale, workloads in SUITE:
            started = time.perf_counter()
            result = run_experiment(experiment_id, scale, workloads)
            yield experiment_id, scale, result, time.perf_counter() - started
        return
    from concurrent.futures import ProcessPoolExecutor, as_completed

    order = [entry[0] for entry in SUITE]
    scales = {entry[0]: entry[1] for entry in SUITE}
    done = {}
    cursor = 0
    with ProcessPoolExecutor(max_workers=min(args.workers, len(SUITE))) as pool:
        futures = [pool.submit(_experiment_task, entry, True) for entry in SUITE]
        for future in as_completed(futures):
            experiment_id, result, error, elapsed, telemetry = future.result()
            if telemetry:
                METRICS.merge(telemetry)
            if error is not None:
                raise RuntimeError(f"{experiment_id} failed: {error}")
            done[experiment_id] = (result, elapsed)
            log.info(
                "suite.experiment_done",
                message=f"done {experiment_id} ({elapsed:.1f}s)",
                experiment=experiment_id,
                elapsed_s=round(elapsed, 3),
            )
            while cursor < len(order) and order[cursor] in done:
                eid = order[cursor]
                result, elapsed = done.pop(eid)
                yield eid, scales[eid], result, elapsed
                cursor += 1


def main(argv=None) -> int:
    args = _parse_args(argv)
    temp_cache = None
    if args.workers > 1 and not args.stats_cache and STATS_CACHE_ENV not in os.environ:
        temp_cache = tempfile.mkdtemp(prefix="rubix-stats-cache-")
        args.stats_cache = temp_cache
    if args.stats_cache:
        os.environ[STATS_CACHE_ENV] = args.stats_cache
    verbosity = VERBOSE if args.verbose else (QUIET if args.quiet else None)
    manifest = None
    if args.telemetry_dir:
        # Environment, not initargs: pool workers (fork or spawn)
        # configure themselves from it at import.
        os.environ[obs_runtime.TELEMETRY_DIR_ENV] = args.telemetry_dir
    obs_runtime.configure(
        enabled=obs_runtime.enabled() or bool(args.telemetry_dir),
        telemetry_dir=args.telemetry_dir,
        verbosity=verbosity,
        log_json=args.log_json,
    )
    if args.telemetry_dir or obs_runtime.telemetry_dir() is not None:
        manifest = RunManifest.create(
            "paper_suite",
            config={
                "suite": [list(entry) for entry in SUITE],
                "workers": args.workers,
                "stats_cache": args.stats_cache,
                "output": args.output,
            },
        )
    out = open(args.output, "w") if args.output else sys.stdout
    suite_started = time.perf_counter()
    try:
        for experiment_id, scale, result, elapsed in _results(args):
            print(result.format(), file=out)
            print(
                f"[{experiment_id} scale={scale} finished in {elapsed:.1f}s]\n",
                file=out,
            )
            out.flush()
            if args.workers == 1:
                log.info(
                    "suite.experiment_done",
                    message=f"done {experiment_id} ({elapsed:.1f}s)",
                    experiment=experiment_id,
                    elapsed_s=round(elapsed, 3),
                )
        print(
            f"[suite finished in {time.perf_counter() - suite_started:.0f}s]", file=out
        )
        if manifest is not None:
            written = obs_runtime.write_telemetry(manifest=manifest)
            log.info(
                "telemetry.written",
                message=f"[telemetry written to {obs_runtime.telemetry_dir()}]",
                artifacts=sorted(str(path) for path in written.values()),
            )
    finally:
        if out is not sys.stdout:
            out.close()
        if temp_cache is not None:
            shutil.rmtree(temp_cache, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
