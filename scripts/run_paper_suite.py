#!/usr/bin/env python3
"""Run the full experiment suite at publication scales, in one process.

Sharing one process lets every experiment reuse the trace and
window-statistics caches, so the whole suite costs one analysis pass per
(workload, mapping) configuration.  Output is the EXPERIMENTS.md data.

Usage:  python scripts/run_paper_suite.py [output.txt]
"""

from __future__ import annotations

import sys
import time

from repro.experiments.runner import run_experiment

#: (experiment id, scale, workload limit) -- None = experiment default.
SUITE = [
    ("fig1a", 1.0, None),
    ("fig4", 1.0, None),
    ("table2", 1.0, None),
    ("fig7", 1.0, None),
    ("table3", 0.5, None),
    ("fig1c", 0.4, None),
    ("fig3", 0.4, None),
    ("fig8", 0.4, None),
    ("fig9", 0.4, None),
    ("sec48", 0.4, None),
    ("sec49", 0.4, None),
    ("fig12", 0.4, None),
    ("fig13", 0.4, None),
    ("table4", 0.4, None),
    ("fig14", 0.4, None),
    ("sec57", 0.4, None),
    ("table5", 0.4, None),
    ("sec61", 0.4, None),
    ("sec62", 0.4, None),
    ("fig16", 0.5, None),
    ("fig17", 0.4, None),
    ("fig8mix", 0.25, None),
    ("fig15", 0.2, None),
    ("sec73", 0.4, None),
    ("actdist", 0.3, None),
    ("indram-escape", 1.0, None),
    ("abl-pitfall", 0.3, None),
    ("abl-stride-attack", 1.0, None),
    ("abl-remap-rate", 0.2, None),
    ("abl-segments", 1.0, None),
    ("abl-tracker", 1.0, None),
    ("abl-cipher-rounds", 0.2, None),
    ("abl-reveng", 1.0, None),
]


def main() -> int:
    out = open(sys.argv[1], "w") if len(sys.argv) > 1 else sys.stdout
    suite_started = time.time()
    for experiment_id, scale, workloads in SUITE:
        started = time.time()
        result = run_experiment(experiment_id, scale, workloads)
        print(result.format(), file=out)
        print(
            f"[{experiment_id} scale={scale} finished in {time.time() - started:.1f}s]\n",
            file=out,
        )
        out.flush()
        print(f"done {experiment_id} ({time.time() - started:.1f}s)")
    print(f"[suite finished in {time.time() - suite_started:.0f}s]", file=out)
    if out is not sys.stdout:
        out.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
