#!/usr/bin/env python3
"""CI smoke test for the distributed (socket-transport) campaign service.

Exercises the network failure envelope end to end on a small grid:

1. a serial run establishes the expected records;
2. the wire-chaos schedule for the chosen seed is precomputed and
   asserted (>= 2 severed connections, >= 1 corrupt frame, >= 1 frame
   lost in the network), so the smoke cannot silently degrade into a
   clean-wire run;
3. the grid is submitted to a scheduler listening on an ephemeral
   127.0.0.1 port, computed by three spawned socket workers whose
   completion frames are dropped, corrupted, torn, delayed, and
   duplicated, and whose connections are severed, by the seeded chaos
   layer -- against real sockets, so the CRC check, nack/resend path,
   lease-expiry re-dispatch, and reconnect backoff being exercised are
   the production code paths;
4. mid-run, the scheduler's live observability endpoint must answer:
   GET /metrics with a non-empty Prometheus exposition, GET /healthz
   with status "ok" (HTTP 200), and GET /status with live per-worker
   and cell-progress data (>= 1 live worker while cells are in flight);
5. the converged records must match the serial reference exactly, the
   journal must hold exactly one commit per cell digest, and at least
   one commit must carry a bumped epoch or second attempt (proof the
   recovery machinery actually ran);
6. the telemetry events must reassemble into a single rooted trace:
   the scheduler's service.submit span plus campaign.cell spans from
   >= 2 other processes (the socket workers), with zero orphans;
7. a scheduler that listens but is never dialed must degrade to a local
   Pipe pool at its fallback deadline and still complete.

Exit status 0 on success, 1 on any mismatch.  Telemetry is always on
for this smoke: artifacts land in REPRO_TELEMETRY_DIR when set (the CI
validation stage does this, then runs scripts/validate_telemetry.py
--traces over them) or in a private temp dir otherwise.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.experiments.campaign import Campaign, MappingSpec
from repro.obs import runtime as obs_runtime
from repro.obs.assemble import assemble_traces
from repro.obs.live import PROMETHEUS_CONTENT_TYPE
from repro.obs.manifest import RunManifest
from repro.resilience.journal import CheckpointJournal
from repro.service import (
    CampaignService,
    ChaosSpec,
    ServiceConfig,
    cell_digest,
    planned_wire_faults,
    spawn_net_workers,
)

MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
]

#: Seed 6 is verified below to sever >= 2 connections, corrupt >= 1
#: frame, and lose >= 1 frame outright on this 8-cell grid.
WIRE_CHAOS = ChaosSpec(
    seed=6,
    wire_drop_frac=0.15,
    wire_corrupt_frac=0.2,
    wire_truncate_frac=0.1,
    wire_conn_drop_frac=0.15,
    wire_delay_frac=0.1,
    wire_delay_s=0.05,
    wire_duplicate_frac=0.15,
)

#: Short leases so a lost completion frame expires inside smoke time; a
#: long fallback deadline so degraded mode cannot mask a worker bug.
#: status_listen exposes the live /metrics//healthz//status endpoint on
#: an ephemeral port the smoke probes mid-run.
CONFIG = ServiceConfig(
    workers=2,
    lease_timeout_s=1.0,
    heartbeat_interval_s=0.15,
    listen="127.0.0.1:0",
    local_fallback_deadline_s=60.0,
    frame_timeout_s=5.0,
    status_listen="127.0.0.1:0",
)

N_WORKERS = 3


def make_campaign() -> Campaign:
    return Campaign(
        workloads=["xz", "lbm"],
        mappings=MAPPINGS,
        schemes=["blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )  # 8 cells


def grid_digests(campaign: Campaign) -> set:
    payload = campaign.parallel_payload()
    return {
        cell_digest(payload, campaign.cell_key(*cell)) for cell in campaign.cells()
    }


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def run_distributed(campaign, *, config, n_workers, chaos, journal, manifest, probe=None):
    """One campaign over real TCP; returns (records, stats, exitcodes).

    ``probe`` is an optional ``async probe(service)`` awaited after the
    submission is in flight and before its result -- the smoke uses it
    to hit the live observability endpoint mid-run.
    """
    processes = []

    async def _main():
        async with CampaignService(
            config, journal=journal, manifest=manifest
        ) as service:
            if n_workers:
                processes.extend(
                    spawn_net_workers(
                        service.listen_address,
                        n_workers,
                        chaos_spec=chaos,
                        obs_config=obs_runtime.export_config(),
                    )
                )
            handle = await service.submit(campaign)
            if probe is not None:
                await probe(service)
            return await handle.result(), service.stats()

    try:
        records, stats = asyncio.run(_main())
        for process in processes:
            process.join(timeout=15)
        return records, stats, [process.exitcode for process in processes]
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)


def ensure_telemetry() -> Path:
    """Telemetry is mandatory for this smoke (endpoint + trace checks).

    Honors an externally-set REPRO_TELEMETRY_DIR (CI validates that
    directory afterwards); otherwise claims a private temp dir.  The
    env var is (re)exported either way so spawned socket workers write
    their event streams into the same directory.
    """
    directory = obs_runtime.telemetry_dir()
    if directory is None:
        directory = Path(tempfile.mkdtemp(prefix="rubix-smoke-telemetry-"))
    os.environ[obs_runtime.TELEMETRY_DIR_ENV] = str(directory)
    obs_runtime.configure(enabled=True, telemetry_dir=directory)
    return directory


def _fetch(url: str):
    """Blocking GET -> (status, content type, body bytes)."""
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type", ""), response.read()


async def probe_endpoints(service) -> None:
    """Hit /metrics, /healthz, /status mid-run; raise on any dead route.

    Runs between submit() and the result await, so cells are genuinely
    in flight.  Polls /status until at least one worker is alive (the
    socket workers may still be dialing when the probe starts).
    """
    loop = asyncio.get_running_loop()
    base = f"http://{service.status_address}"

    status, ctype, body = await loop.run_in_executor(None, _fetch, base + "/metrics")
    if status != 200 or ctype != PROMETHEUS_CONTENT_TYPE or not body.strip():
        raise AssertionError(
            f"/metrics mid-run: status={status} type={ctype!r} bytes={len(body)}"
        )

    status, _, body = await loop.run_in_executor(None, _fetch, base + "/healthz")
    health = json.loads(body)
    if status != 200 or health.get("status") != "ok":
        raise AssertionError(f"/healthz mid-run: status={status} payload={health}")

    deadline = time.monotonic() + 30.0
    payload = {}
    while time.monotonic() < deadline:
        status, _, body = await loop.run_in_executor(None, _fetch, base + "/status")
        payload = json.loads(body)
        if status != 200:
            raise AssertionError(f"/status mid-run: HTTP {status}")
        if payload.get("workers_alive", 0) >= 1 and payload.get("cells"):
            break
        await asyncio.sleep(0.2)
    else:
        raise AssertionError(f"/status never showed live workers: {payload}")
    if payload.get("cells") != 8:
        raise AssertionError(f"/status cells={payload.get('cells')}, expected 8")
    if not isinstance(payload.get("workers"), list) or not payload["workers"]:
        raise AssertionError("/status carries no per-worker detail")
    print(
        f"live endpoint at {service.status_address}: /metrics, /healthz, /status"
        f" answered mid-run ({payload['workers_alive']} workers alive,"
        f" {payload['committed']}/{payload['cells']} cells committed)"
    )


def check_trace_tree(directory: Path) -> str:
    """Assert one rooted submit trace spanning >= 3 processes; '' if ok."""
    trees = [
        tree
        for tree in assemble_traces(directory)
        if any(span.name == "service.submit" for span in tree.spans.values())
    ]
    if not trees:
        return "no assembled trace contains a service.submit span"
    # The chaos run is this process's only service.submit submission so
    # far; take the earliest such trace.
    tree = trees[0]
    if tree.root is None:
        return (
            f"submit trace {tree.trace_id} has {len(tree.roots)} roots,"
            " expected exactly one"
        )
    if tree.root.name != "service.submit":
        return f"submit trace rooted at {tree.root.name!r}, not service.submit"
    if tree.orphans:
        return (
            f"submit trace {tree.trace_id} has {len(tree.orphans)} orphan"
            " span(s) whose parents never landed"
        )
    cell_pids = {
        span.pid for span in tree.spans.values() if span.name == "campaign.cell"
    }
    worker_pids = cell_pids - {tree.root.pid}
    if len(worker_pids) < 2:
        return (
            f"submit trace holds cell spans from only {len(worker_pids)}"
            f" worker process(es); expected >= 2"
        )
    print(
        f"trace tree: {tree.span_count()} spans from {len(tree.pids)} processes"
        f" assemble under one service.submit root"
        f" ({len(worker_pids)} worker pids, 0 orphans)"
    )
    return ""


def main() -> int:
    telemetry_dir = ensure_telemetry()
    campaign = make_campaign()
    keys = [campaign.cell_key(*cell) for cell in campaign.cells()]
    plan = [decision for _, decision in planned_wire_faults(WIRE_CHAOS, keys)]
    severed = sum(d.drops_connection for d in plan)
    corrupt = sum(d.fate == "corrupt" for d in plan)
    lost = sum(d.fate == "drop" for d in plan)
    print(
        f"wire-chaos schedule over {len(keys)} cells: {severed} severed"
        f" connections, {corrupt} corrupt frames, {lost} lost frames"
    )
    if severed < 2 or corrupt < 1 or lost < 1:
        return fail("wire-chaos seed is no longer adversarial; pick a new seed")

    expected = make_campaign().run()
    print(f"serial reference: {len(expected)} records")

    manifest = RunManifest.create(
        "distributed_smoke",
        config={"cells": len(keys), "net_workers": N_WORKERS, "chaos_seed": WIRE_CHAOS.seed},
    )
    with tempfile.TemporaryDirectory(prefix="rubix-distributed-smoke-") as tmp:
        journal_path = Path(tmp) / "distributed.jsonl"
        records, stats, exitcodes = run_distributed(
            make_campaign(),
            config=CONFIG,
            n_workers=N_WORKERS,
            chaos=WIRE_CHAOS,
            journal=journal_path,
            manifest=manifest,
            probe=probe_endpoints,
        )
        if records != expected:
            return fail("distributed chaos-run records differ from the serial run")
        print("chaos run over TCP: records match the serial reference")
        if stats["fallback_engaged"]:
            return fail("degraded mode engaged while socket workers were alive")
        if any(code != 0 for code in exitcodes):
            return fail(f"socket workers exited uncleanly: {exitcodes}")
        print(f"workers: {N_WORKERS} socket workers drained cleanly (exit 0)")

        digests = grid_digests(campaign)
        entries = CheckpointJournal(journal_path).load()
        if len(entries) != len(digests):
            return fail(
                f"journal holds {len(entries)} commits for {len(digests)} cells"
                " (exactly-once violated)"
            )
        if {entry["key"] for entry in entries} != digests:
            return fail("journal digests do not cover the submitted grid")
        redispatched = [
            entry for entry in entries if entry["epoch"] > 0 or entry["attempt"] > 1
        ]
        if not redispatched:
            return fail("wire chaos forced no re-dispatch (recovery never ran)")
        print(
            f"journal: exactly one commit per cell ({len(entries)} total,"
            f" {len(redispatched)} recovered via re-dispatch)"
        )

        trace_error = check_trace_tree(telemetry_dir)
        if trace_error:
            return fail(trace_error)

    # Degraded mode: a listening scheduler nobody dials must fall back
    # to a local Pipe pool and still complete.
    fallback_config = ServiceConfig(
        workers=2,
        listen="127.0.0.1:0",
        local_fallback_deadline_s=0.5,
        heartbeat_interval_s=0.15,
    )
    records, stats, _ = run_distributed(
        make_campaign(),
        config=fallback_config,
        n_workers=0,
        chaos=None,
        journal=None,
        manifest=manifest,
    )
    if records != expected:
        return fail("degraded-mode records differ from the serial run")
    if not stats["fallback_engaged"]:
        return fail("scheduler with zero workers never engaged local fallback")
    print("degraded mode: zero workers -> local pool completed identically")

    if obs_runtime.telemetry_dir() is not None:
        obs_runtime.write_telemetry(manifest=manifest)
        print(f"telemetry written to {obs_runtime.telemetry_dir()}")

    print("OK: distributed smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
