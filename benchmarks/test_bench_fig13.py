"""Benchmark regenerating Figure 13 (per-workload perf with Rubix-D)."""

from _bench_util import run_and_report


def test_bench_fig13(benchmark):
    result = run_and_report(benchmark, "fig13", workloads=None)
    averages = {row[1]: row for row in result.rows if row[0] == "average"}
    # Paper: Rubix-D brings AQUA/SRS/BH to 1.5% / 2.3% / 2.8% slowdown.
    for scheme in ("aqua", "srs", "blockhammer"):
        row = averages[scheme]
        assert row[4] > 0.90, (scheme, row[4])
        assert row[4] > row[2], scheme  # beats Coffee Lake + mitigation
