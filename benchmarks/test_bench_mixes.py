"""Benchmark regenerating the mixed-workload portion of Figures 8/13."""

from _bench_util import run_and_report


def test_bench_fig8mix(benchmark):
    result = run_and_report(benchmark, "fig8mix", scale=0.1, workloads=8)
    averages = {row[2]: row for row in result.rows if row[0] == "average"}
    for scheme in ("aqua", "srs", "blockhammer"):
        row = averages[scheme]
        assert row[4] > row[3], scheme  # Rubix beats the baseline
        assert row[4] > 0.9, scheme
