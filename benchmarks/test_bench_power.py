"""Benchmarks regenerating the power tables (Sections 4.9 and 5.7)."""

from _bench_util import run_and_report


def test_bench_sec49_rubix_s_power(benchmark):
    result = run_and_report(benchmark, "sec49", workloads=None)
    rows = result.row_map()
    # GS1 costs more power than GS4 (more activations); both are
    # bounded overheads (paper: 4.3% and 10.6%).
    assert rows["GS1"][4] > rows["GS4"][4]
    assert rows["GS4"][4] < 12
    assert rows["GS1"][4] < 20


def test_bench_sec57_rubix_d_power(benchmark):
    result = run_and_report(benchmark, "sec57", workloads=None)
    rows = result.row_map()
    assert rows["GS1"][4] > rows["GS4"][4]
    # Rubix-D adds swap traffic on top of the hit-rate loss.
    assert rows["GS4"][3] > 0
