"""Benchmarks regenerating Figure 1 (threshold trend + slowdown table)."""

from _bench_util import run_and_report


def test_bench_fig1a(benchmark):
    """Figure 1(a): Rowhammer threshold trend."""
    result = run_and_report(benchmark, "fig1a", scale=1.0, workloads=None)
    assert result.rows[0][2] == 139_000


def test_bench_fig1c(benchmark):
    """Figure 1(c): average slowdown of secure mitigations vs T_RH."""
    result = run_and_report(benchmark, "fig1c")
    table = {row[0]: row for row in result.rows}
    # Slowdown explodes as the threshold drops; Blockhammer worst.
    assert table[128][1] > table[1024][1]  # AQUA
    assert table[128][3] > table[128][2] > table[128][1]
