"""Benchmark regenerating Table 2 (workload characteristics)."""

from _bench_util import BENCH_SCALE, run_and_report


def test_bench_table2(benchmark):
    result = run_and_report(benchmark, "table2", workloads=None)
    rows = result.row_map()
    # Hot-row counts track their calibration targets per workload.
    for name in ("blender", "lbm", "gcc", "mcf"):
        measured = rows[name][3]
        target = rows[name][5]
        assert abs(measured - target) <= 0.35 * max(target, 10), name
    # leela has (essentially) no hot rows.
    assert rows["leela"][3] <= 2
