"""Benchmark regenerating the Section 4.8 row-buffer hit-rate table."""

from _bench_util import run_and_report


def test_bench_sec48(benchmark):
    result = run_and_report(benchmark, "sec48", workloads=None)
    rows = result.row_map()
    # Hit-rate ordering: GS1 ~0 < GS2 < GS4 < baselines.
    assert rows["rubix-s-gs1"][1] < 2
    assert rows["rubix-s-gs1"][1] < rows["rubix-s-gs2"][1] < rows["rubix-s-gs4"][1]
    assert rows["rubix-s-gs4"][1] < rows["coffeelake"][1]
    # Activation blow-up at GS1 (paper: up to 2.7x).
    assert 1.5 < rows["rubix-s-gs1"][2] < 3.5
