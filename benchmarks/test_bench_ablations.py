"""Benchmarks for the ablation studies (design-choice experiments)."""

from _bench_util import run_and_report


def test_bench_abl_pitfall(benchmark):
    """§5.2: one global xor key does not reduce hot rows; v-groups do."""
    result = run_and_report(benchmark, "abl-pitfall", workloads=4)
    rows = result.row_map()
    baseline = rows["coffeelake"][1]
    assert abs(rows["horizontal-xor"][1] - baseline) <= 0.05 * baseline + 2
    assert rows["rubix-d (vertical)"][1] < baseline / 20


def test_bench_abl_stride_attack(benchmark):
    """§6.1: the fixed-stride mapping is exposed; the cipher is not."""
    result = run_and_report(benchmark, "abl-stride-attack", scale=1.0, workloads=None)
    rows = result.row_map()
    assert rows["LargeStride"][5] == "EXPOSED"
    assert rows["Rubix-S (GS4)"][5] == "robust"
    assert rows["Rubix-D (GS4)"][5] == "robust"


def test_bench_abl_remap_rate(benchmark):
    """§5.4: swap overhead grows with remapping rate."""
    result = run_and_report(benchmark, "abl-remap-rate", workloads=4)
    slowdowns = [row[1] for row in result.rows]
    swaps = [row[2] for row in result.rows]
    assert swaps == sorted(swaps)
    assert slowdowns[0] <= slowdowns[-1]


def test_bench_abl_segments(benchmark):
    """§5.4: segments shorten the remap period at linear SRAM cost."""
    result = run_and_report(benchmark, "abl-segments", scale=1.0, workloads=None)
    rows = result.rows
    assert rows[-1][0] == 32
    assert rows[-1][2] == 16 * 1024  # paper: 16 KB for 32 segments


def test_bench_abl_tracker(benchmark):
    """CBF tracking never throttles less than the ideal tracker."""
    result = run_and_report(benchmark, "abl-tracker", scale=1.0, workloads=None)
    rows = result.row_map()
    ideal = rows["ideal per-row"][1]
    assert rows["dual CBF 1K"][1] >= ideal
    assert rows["dual CBF 8K"][1] >= ideal
    assert rows["dual CBF 8K"][1] <= rows["dual CBF 1K"][1]


def test_bench_abl_reveng(benchmark):
    """Intel mappings are linearly recoverable; Rubix sits at chance."""
    result = run_and_report(benchmark, "abl-reveng", scale=1.0, workloads=None)
    rows = result.row_map()
    for label in ("coffeelake", "skylake", "mop"):
        assert rows[label][2] == "RECOVERED"
    for label in ("rubix-s-gs4", "rubix-d-gs4"):
        assert rows[label][2] == "resists"


def test_bench_abl_cipher_rounds(benchmark):
    """Benign hot-row elimination is insensitive to cipher depth."""
    result = run_and_report(benchmark, "abl-cipher-rounds", workloads=4)
    counts = [row[1] for row in result.rows]
    assert max(counts) - min(counts) <= 0.5 * max(counts) + 5
