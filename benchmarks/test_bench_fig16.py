"""Benchmark regenerating Figure 16 (STREAM workloads)."""

from _bench_util import run_and_report


def test_bench_fig16(benchmark):
    result = run_and_report(benchmark, "fig16", scale=0.5, workloads=None)
    # Paper: Rubix + mitigations costs 2-8% on memory-intensive STREAM.
    for row in result.rows:
        flavor, scheme, baseline, perf = row
        assert perf > 0.85, row
        assert perf <= 1.02, row
