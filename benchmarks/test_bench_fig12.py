"""Benchmark regenerating Figure 12 (hot rows across Rubix flavors)."""

from _bench_util import run_and_report


def test_bench_fig12(benchmark):
    result = run_and_report(benchmark, "fig12", workloads=None)
    rows = result.row_map()
    baselines = max(rows["coffeelake"][1], rows["skylake"][1])
    # Paper: every Rubix configuration at least 100x below baselines.
    for label in (
        "rubix-s-gs1",
        "rubix-s-gs2",
        "rubix-s-gs4",
        "rubix-d-gs1",
        "rubix-d-gs2",
        "rubix-d-gs4",
    ):
        assert baselines > 50 * max(rows[label][1], 0.5), label
    # GS1 eliminates hot rows entirely.
    assert rows["rubix-s-gs1"][1] <= 1
    assert rows["rubix-d-gs1"][1] <= 1
