"""Benchmark regenerating Figure 3 (threshold sweep, Intel mappings)."""

from _bench_util import run_and_report


def test_bench_fig3(benchmark):
    result = run_and_report(benchmark, "fig3")
    rows = {(row[0], row[1]): row for row in result.rows}
    # Normalized IPC degrades monotonically as T_RH drops.
    for scheme in ("aqua", "srs", "blockhammer"):
        series = [rows[(scheme, t)][2] for t in (1024, 512, 256, 128)]
        assert series == sorted(series, reverse=True), (scheme, series)
    # Blockhammer collapses hardest at T_RH=128 (paper: ~0.14-0.2).
    assert rows[("blockhammer", 128)][2] < rows[("srs", 128)][2]
    assert rows[("srs", 128)][2] < rows[("aqua", 128)][2]
