"""Benchmarks regenerating the Section 6 discussion experiments."""

from _bench_util import run_and_report


def test_bench_sec61_large_stride(benchmark):
    result = run_and_report(benchmark, "sec61", workloads=None)
    # Paper: 1.8%-3.8% slowdown, comparable to Rubix-S.
    for row in result.rows:
        scheme, slowdown, hot_rows = row
        assert slowdown < 10, row
        assert hot_rows < 300, row


def test_bench_sec62_keyed_xor(benchmark):
    result = run_and_report(benchmark, "sec62", workloads=None)
    # Paper: 0.9%-2.6% average slowdown.
    for row in result.rows:
        assert row[1] < 10, row
