"""Benchmark: 100M-line file-backed trace at chunk-bounded peak RSS.

Writes a 100-million-line raw ``.rtr`` trace (~800 MB) with the
streaming writer, then pushes it through the full dynamic window
pipeline -- memmap load, chunked Rubix-D translation, chunked analysis,
remap advancement -- inside a subprocess, and asserts the subprocess's
peak RSS stayed far below the file size (i.e. the trace was never
materialized; :func:`repro.workloads.trace.iter_line_chunks` released
consumed pages as the window streamed).

Scale down with ``REPRO_BENCH_MEMMAP_LINES`` for quick runs; the RSS
bound is enforced whenever the file is comfortably larger than the
bound itself.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.workloads.trace_io import RawTraceWriter

N_LINES = int(os.environ.get("REPRO_BENCH_MEMMAP_LINES", 100_000_000))
CHUNK_LINES = 1 << 21  # 2M lines / 16 MB per chunk
#: Peak-RSS ceiling for the analysis subprocess.  The trace file is ~8
#: bytes/line, so at the default 100M lines (~800 MB) this bound can
#: only hold if the pipeline truly streams.
RSS_BOUND_MB = 400

_CHILD = textwrap.dedent(
    """
    import resource, sys
    import numpy as np
    from repro.dram.config import baseline_config
    from repro.core.rubix_d import RubixDMapping
    from repro.perf.hotpath_bench import run_window
    from repro.workloads.trace_io import load_trace_raw

    def peak_rss_kb():
        # VmHWM is the canonical peak-resident figure on Linux; some
        # kernels report ru_maxrss as cumulative faulted pages, which
        # never goes down when madvise() releases them and so cannot
        # measure a streaming pipeline.
        try:
            with open("/proc/self/status") as status:
                for line in status:
                    if line.startswith("VmHWM"):
                        return int(line.split()[1])
        except OSError:
            pass
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    path, chunk_lines = sys.argv[1], int(sys.argv[2])
    trace = load_trace_raw(path)           # zero-copy memmap
    config = baseline_config()
    mapping = RubixDMapping(config, gang_size=4, seed=7, remap_rate=0.01)
    stats, swaps = run_window(
        mapping, trace.lines, chunk_lines=chunk_lines, backend="numpy"
    )
    print(f"{stats.n_activations} {swaps} {peak_rss_kb()}")
    """
)


@pytest.mark.skipif(sys.platform != "linux", reason="madvise page release is POSIX/linux")
def test_100m_line_memmap_window_bounded_rss(tmp_path, benchmark):
    from repro.dram.config import baseline_config

    total = baseline_config().total_lines
    path = tmp_path / "big.rtr"
    rng = np.random.default_rng(0xB16)
    with RawTraceWriter(
        path, name="memmap-bench", instructions=max(1, N_LINES // 2)
    ) as writer:
        written = 0
        while written < N_LINES:
            n = min(CHUNK_LINES, N_LINES - written)
            writer.append(rng.integers(0, total, size=n, dtype=np.uint64))
            written += n
    file_mb = path.stat().st_size / 1e6

    def run():
        out = subprocess.run(
            [sys.executable, "-c", _CHILD, str(path), str(CHUNK_LINES)],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        )
        n_act, swaps, peak_kb = (int(x) for x in out.stdout.split())
        return n_act, swaps, peak_kb / 1024.0

    n_act, swaps, peak_mb = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nfile={file_mb:.0f}MB lines={N_LINES:,} "
          f"activations={n_act:,} swaps={swaps:,} peak_rss={peak_mb:.0f}MB")
    assert n_act > 0 and swaps > 0
    # Only meaningful when the file dwarfs the bound (scaled-down runs
    # still exercise the pipeline, just not the memory claim).
    if file_mb > 1.5 * RSS_BOUND_MB:
        assert peak_mb < RSS_BOUND_MB, (
            f"peak RSS {peak_mb:.0f}MB exceeds {RSS_BOUND_MB}MB bound "
            f"for a {file_mb:.0f}MB trace -- the window is materializing"
        )
