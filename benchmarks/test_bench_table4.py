"""Benchmark regenerating Table 4 (isolated Rubix mapping overhead)."""

from _bench_util import run_and_report


def test_bench_table4(benchmark):
    result = run_and_report(benchmark, "table4", workloads=None)
    rows = result.row_map()
    # Paper: GS4 1.0/1.3, GS2 1.6/1.9, GS1 2.6/2.7 percent (S/D).
    assert rows["GS4"][1] <= rows["GS2"][1] <= rows["GS1"][1] + 0.3
    for gang in ("GS4", "GS2", "GS1"):
        rubix_s, rubix_d = rows[gang][1], rows[gang][2]
        assert -0.5 < rubix_s < 6.0, (gang, rubix_s)
        assert rubix_d >= rubix_s - 0.5, gang  # dynamic adds remap cost
