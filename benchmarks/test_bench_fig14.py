"""Benchmark regenerating Figure 14 (Rubix at higher thresholds)."""

from _bench_util import run_and_report


def test_bench_fig14(benchmark):
    result = run_and_report(benchmark, "fig14", workloads=None)
    # Rubix keeps slowdown low across thresholds; higher T_RH is never
    # worse than T_RH=128.
    for row in result.rows:
        scheme, flavor, at_128, at_512, at_1024 = row
        assert at_1024 <= at_128 + 0.5, row
        assert at_1024 < 8, row
