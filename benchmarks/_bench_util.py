"""Shared helpers for the benchmark suite."""

from __future__ import annotations

from repro.experiments.runner import run_experiment

#: Workload scale for benchmark runs (hot-row counts scale linearly;
#: slowdowns and orderings are scale-invariant by construction).
BENCH_SCALE = 0.08

#: Workload subset size for the heaviest sweeps.
BENCH_WORKLOADS = 6


def run_and_report(benchmark, experiment_id, scale=BENCH_SCALE, workloads=BENCH_WORKLOADS):
    """Benchmark one experiment run and print its table.

    One round is enough -- each 'iteration' is a full table/figure
    regeneration and the quantity of interest is the generated data, not
    nanosecond timing stability.
    """
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, scale, workloads),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.format())
    return result
