"""Benchmark regenerating Table 3 (activating lines per hot row)."""

from _bench_util import run_and_report


def test_bench_table3(benchmark):
    result = run_and_report(benchmark, "table3")
    average = result.row_map()["average"]
    # Paper: ~98% of hot rows draw from 32-64 lines, avg 56 lines.
    pct_32_64 = average[3]
    avg_lines = average[5]
    assert pct_32_64 > 70
    assert 30 <= avg_lines <= 70
