"""Benchmark: telemetry-disabled overhead on the simulation hot path.

The observability layer's contract is that when telemetry is off (the
default), every instrumented call site costs one boolean check.  This
measures it end to end: a 1M-line dynamic Rubix-D window through the
instrumented :meth:`Simulator.window_stats` vs the uninstrumented
replica of the same pipeline (:func:`hotpath_bench.run_window`), and
asserts the instrumented path stays within 2% -- with bit-identical
stats and swap totals, so the comparison is apples-to-apples.

Timing gates are inherently noisy, so the measurement is interleaved
best-of-``REPS`` with a few retry attempts before failing; the gate
lives here (outside tier-1 testpaths) so machine jitter can never block
the main suite.
"""

import time

import pytest

from repro import obs
from repro.core.rubix_d import RubixDMapping
from repro.dram.config import baseline_config
from repro.perf.hotpath_bench import assert_stats_equal, run_window, synth_lines
from repro.perf.simulator import Simulator
from repro.workloads.trace import Trace

BENCH_LINES = 1_000_000
CHUNK_LINES = 1 << 20
SEED = 0xB16B00
MAX_OVERHEAD = 0.02
REPS = 5
ATTEMPTS = 3


@pytest.fixture(autouse=True)
def telemetry_off():
    obs.reset()  # disabled registry/tracer/logs -- the default state
    yield
    obs.reset()


def fresh_mapping():
    # Remap state advances during a window, so every measurement needs a
    # same-seed rebuild for its results to be comparable.
    return RubixDMapping(baseline_config(), gang_size=4, seed=SEED)


def make_inputs():
    config = baseline_config()
    lines = synth_lines(BENCH_LINES, config, seed=SEED)
    trace = Trace("bench", lines, instructions=BENCH_LINES, seed=SEED)
    return lines, trace


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_disabled_overhead_under_two_percent():
    lines, trace = make_inputs()
    sim = Simulator(chunk_lines=CHUNK_LINES)
    assert not obs.METRICS.enabled

    def baseline():
        return run_window(fresh_mapping(), lines, chunk_lines=CHUNK_LINES)

    def instrumented():
        return sim.window_stats(trace, fresh_mapping(), use_cache=False)

    baseline()  # warm caches/page faults once before any timing
    instrumented()

    overhead = None
    for attempt in range(ATTEMPTS):
        best_base = best_inst = float("inf")
        for _ in range(REPS):  # interleaved so drift hits both equally
            dt, (base_stats, base_swaps) = timed(baseline)
            best_base = min(best_base, dt)
            dt, (inst_stats, inst_swaps) = timed(instrumented)
            best_inst = min(best_inst, dt)
        # Same pipeline, same seed: results must agree bit-for-bit.
        assert base_swaps == inst_swaps
        assert_stats_equal(base_stats, inst_stats)
        overhead = best_inst / best_base - 1.0
        print(
            f"\nattempt {attempt + 1}: baseline {best_base:.4f}s, "
            f"instrumented {best_inst:.4f}s, overhead {overhead * 100:+.2f}%"
        )
        if overhead < MAX_OVERHEAD:
            break
    assert overhead < MAX_OVERHEAD, (
        f"telemetry-disabled hot path is {overhead * 100:.2f}% slower than "
        f"the uninstrumented replica (budget {MAX_OVERHEAD * 100:.0f}%)"
    )
    # Nothing leaked into the disabled registry.
    assert obs.METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_enabled_mode_matches_disabled_results():
    lines, trace = make_inputs()
    sim = Simulator(chunk_lines=CHUNK_LINES)
    disabled_stats, disabled_swaps = sim.window_stats(
        trace, fresh_mapping(), use_cache=False
    )

    obs.configure(enabled=True)
    enabled_stats, enabled_swaps = sim.window_stats(
        trace, fresh_mapping(), use_cache=False
    )
    assert enabled_swaps == disabled_swaps
    assert_stats_equal(enabled_stats, disabled_stats)
    snap = obs.METRICS.snapshot()
    assert snap["counters"]["sim.windows|mode=dynamic"] == 1
    assert snap["counters"]["sim.lines"] == BENCH_LINES
    assert obs.validate_snapshot(snap) == []
