"""Benchmarks for the beyond-the-paper experiments (sec73, actdist)."""

from _bench_util import run_and_report


def test_bench_sec73_victim_refresh(benchmark):
    """§7.3: Rubix slashes victim-refresh work for deployed TRR too."""
    result = run_and_report(benchmark, "sec73", workloads=None)
    rows = result.row_map()
    assert rows["rubix-s-gs4"][1] < rows["coffeelake"][1] / 20
    assert rows["rubix-d-gs4"][1] < rows["coffeelake"][1] / 10


def test_bench_indram_escape(benchmark):
    """§7.3: in-DRAM sampling trackers leak; guaranteed trackers do not."""
    result = run_and_report(benchmark, "indram-escape", scale=1.0, workloads=None)
    rows = result.row_map()
    assert rows["ideal per-row (Blockhammer)"][1] == 0
    assert rows["Misra-Gries 64 (AQUA/SRS)"][1] == 0
    assert rows["in-DRAM 16-entry sampler (DSAC-like)"][1] > 2  # percent
    assert rows["in-DRAM 4-entry sampler"][1] > rows[
        "in-DRAM 16-entry sampler (DSAC-like)"
    ][1]


def test_bench_actdist(benchmark):
    """The activation tail collapses under randomization."""
    result = run_and_report(benchmark, "actdist", workloads=None)
    rows = {row[0]: row for row in result.rows}
    for workload in ("blender", "lbm", "gcc", "mcf"):
        baseline = rows[f"{workload}/coffeelake"]
        gs1 = rows[f"{workload}/rubix-s-gs1"]
        assert gs1[4] < baseline[4] / 2, workload  # p99.9
        assert gs1[6] < baseline[6], workload  # top-1% share
