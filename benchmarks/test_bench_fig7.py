"""Benchmark regenerating Figure 7 (hot rows: Intel vs Rubix-S)."""

from _bench_util import run_and_report


def test_bench_fig7(benchmark):
    result = run_and_report(benchmark, "fig7", workloads=None)
    mean = result.row_map()["mean"]
    coffeelake, skylake, rubix = mean[1], mean[2], mean[3]
    # Paper: baselines >7K mean hot rows; Rubix-S(GS4) 220x fewer.
    assert coffeelake > 100 * max(rubix, 0.5)
    assert abs(skylake - coffeelake) < 0.4 * coffeelake
