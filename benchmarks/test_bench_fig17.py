"""Benchmark regenerating Figure 17 (MOP vs Rubix)."""

from _bench_util import run_and_report


def test_bench_fig17(benchmark):
    result = run_and_report(benchmark, "fig17", workloads=None)
    rows = result.row_map()
    for scheme in ("aqua", "srs", "blockhammer"):
        row = rows[scheme]
        mop, rubix_s = row[3], row[4]
        # MOP keeps the spatial correlation: it suffers like the Intel
        # mappings, while Rubix is near baseline.
        assert rubix_s > mop, row
        assert abs(mop - row[1]) < 0.25, row  # MOP ~ Coffee Lake
