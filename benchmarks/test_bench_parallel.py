"""Benchmark the campaign engine: serial sweep vs process-pool dispatch.

The parallel round is NOT asserted faster -- CI may have a single core,
where pool dispatch adds pure overhead.  What these benchmarks surface
is (a) the per-cell cost of a warm-cache serial sweep and (b) the fixed
cost of fanning the same grid out over workers, so regressions in
either path show up in the benchmark history.
"""

from repro.experiments.campaign import Campaign, MappingSpec

#: 3 workloads x 2 mappings x 1 scheme x 2 thresholds = 12 cells.
GRID = dict(
    workloads=["xz", "namd", "lbm"],
    mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
    schemes=["blockhammer"],
    thresholds=[128, 512],
    scale=0.05,
)


def _check(records):
    assert len(records) == 12
    assert all(record["status"] == "ok" for record in records)


def test_bench_campaign_serial(benchmark):
    _check(Campaign(**GRID).run())  # warm the trace/stats caches first
    records = benchmark.pedantic(
        lambda: Campaign(**GRID).run(), iterations=1, rounds=3
    )
    _check(records)


def test_bench_campaign_parallel(benchmark):
    _check(Campaign(**GRID).run())  # warm caches the forked workers inherit
    records = benchmark.pedantic(
        lambda: Campaign(**GRID).run(workers=2), iterations=1, rounds=3
    )
    _check(records)
