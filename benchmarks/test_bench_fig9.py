"""Benchmark regenerating Figure 9 (gang-size sensitivity)."""

from _bench_util import run_and_report


def test_bench_fig9(benchmark):
    result = run_and_report(benchmark, "fig9", workloads=None)
    rows = result.row_map()
    # Blockhammer pays for every residual hot row, so its GS1 penalty
    # stays close to GS4's (in the paper GS1 wins outright; our model
    # puts them within ~1.5% -- see EXPERIMENTS.md).
    bh = rows["blockhammer"]
    assert bh[1] <= bh[3] + 1.5
    # AQUA works best at GS4 (row-buffer hits dominate).
    aqua = rows["aqua"]
    assert aqua[3] <= aqua[1] + 0.5
    # All Rubix-S configurations stay in the single-digit range.
    for scheme in ("aqua", "srs", "blockhammer"):
        assert all(v < 12 for v in rows[scheme][1:]), rows[scheme]
