"""Benchmark regenerating Figure 15 (8-core multi-channel systems)."""

from _bench_util import run_and_report


def test_bench_fig15(benchmark):
    result = run_and_report(benchmark, "fig15", scale=0.05, workloads=4)
    # Rubix keeps the scaled-up systems near baseline while the Intel
    # mapping suffers with every scheme, on both channel counts.
    for row in result.rows:
        channels, scheme, coffeelake, rubix_s, rubix_d = row
        assert rubix_s > coffeelake, row
        assert rubix_s > 0.85, row
        assert rubix_d > 0.80, row
    bh_rows = [row for row in result.rows if row[1] == "blockhammer"]
    assert all(row[2] < 0.5 for row in bh_rows)
