"""Benchmark regenerating Table 5 (mitigation comparison)."""

from _bench_util import run_and_report


def test_bench_table5(benchmark):
    result = run_and_report(benchmark, "table5", workloads=None)
    rows = result.row_map()
    # TRR is cheap but insecure; secure schemes are costly on the
    # baseline mapping; Rubix makes them cheap.
    assert rows["in-DRAM TRR"][2] < 2
    assert rows["AQUA"][2] > 5
    assert rows["SRS"][2] > rows["AQUA"][2]
    assert rows["BLOCKHAMMER"][2] > rows["SRS"][2]
    for scheme in ("AQUA", "SRS", "BLOCKHAMMER"):
        assert rows[f"Rubix + {scheme}"][2] < 8
