"""Benchmark regenerating Figure 4 (illustrative hot-row model)."""

from _bench_util import run_and_report


def test_bench_fig4(benchmark):
    result = run_and_report(benchmark, "fig4", scale=1.0, workloads=None)
    rows = result.row_map()
    # Baseline mapping: stride and random make all 1K rows hot.
    assert rows["stream"][1] == 0
    assert rows["stride-64"][1] == 1024
    assert rows["random"][1] >= 1000
    # Encryption eliminates them.
    assert rows["stream"][2] == 0
    assert rows["stride-64"][2] <= 1
    assert rows["random"][2] <= 1
    # Analytic model agrees with measurement.
    assert rows["random"][4] < 1.0
