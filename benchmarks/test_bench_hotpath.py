"""Benchmark: hot-path kernels (optimized vs in-tree reference).

Runs the :mod:`repro.perf.hotpath_bench` harness at a reduced window and
reports its kernel table.  Equivalence between the optimized and
reference kernels is asserted inside the harness, so this doubles as a
regression check; the full 10M-line numbers live in
``BENCH_hotpath.json`` (regenerate with ``scripts/bench_hotpath.py``).
"""

from repro.perf.hotpath_bench import format_report, run_benchmarks

BENCH_LINES = 1_000_000


def test_hotpath_kernels(benchmark):
    result = benchmark.pedantic(
        run_benchmarks,
        kwargs=dict(lines=BENCH_LINES, reps=1),
        iterations=1,
        rounds=1,
    )
    print()
    print(format_report(result))
    # Every kernel pair was asserted bit-identical in-run; the speedups
    # at this reduced window should still clearly favor the optimized
    # kernels (no hard gate -- timing lives in BENCH_hotpath.json).
    for name, entry in result["kernels"].items():
        assert entry["speedup"] > 1.0, f"{name} regressed: {entry}"
