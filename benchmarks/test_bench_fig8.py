"""Benchmark regenerating Figure 8 (per-workload perf with Rubix-S)."""

from _bench_util import run_and_report


def _avg_slowdown_pct(result, scheme, column):
    """Paper-style average slowdown: mean of per-workload 1/IPC - 1."""
    values = [
        100.0 * (1.0 / row[column] - 1.0)
        for row in result.rows
        if row[1] == scheme and row[0] != "average"
    ]
    return sum(values) / len(values)


def test_bench_fig8(benchmark):
    result = run_and_report(benchmark, "fig8", workloads=None)
    # Paper: AQUA 15%->1.1%, SRS 60%->3.1%, Blockhammer 600%->2.9%
    # (averages of per-workload slowdowns, dominated by the heavy ones).
    for scheme, min_baseline, max_rubix in (
        ("aqua", 5.0, 4.0),
        ("srs", 25.0, 6.0),
        ("blockhammer", 150.0, 6.0),
    ):
        baseline = _avg_slowdown_pct(result, scheme, column=2)
        rubix = _avg_slowdown_pct(result, scheme, column=4)
        assert baseline > min_baseline, (scheme, baseline)
        assert rubix < max_rubix, (scheme, rubix)
        assert baseline > 4 * rubix, scheme
