"""Integration tests for the protocol-backed memory system with
mitigations attached -- the highest-fidelity end-to-end path."""

import numpy as np
import pytest

from repro.dram.config import DRAMConfig
from repro.dram.memory_system import Request
from repro.dram.protocol_system import ProtocolMemorySystem
from repro.core.rubix_s import RubixSMapping
from repro.mapping.intel import CoffeeLakeMapping
from repro.mitigations.aqua import AQUA
from repro.mitigations.blockhammer import Blockhammer
from repro.workloads.attacks import double_sided_attack, half_double_attack

T_RH = 128


@pytest.fixture(scope="module")
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=2048)


def _requests(trace, spacing=60e-9):
    return [Request(int(line), i * spacing) for i, line in enumerate(trace.lines)]


class TestCommandLevelSecurity:
    def test_aqua_bounds_rows_at_command_level(self, config):
        mapping = CoffeeLakeMapping(config)
        attack = double_sided_attack(mapping, victim_row=500, activations_per_side=1500)
        system = ProtocolMemorySystem(config, mapping, mitigation=AQUA(config, T_RH))
        system.run_trace(_requests(attack))
        assert system.stats.max_row_activations() <= T_RH

    def test_blockhammer_bounds_rows_at_command_level(self, config):
        mapping = CoffeeLakeMapping(config)
        attack = half_double_attack(mapping, victim_row=500, far_activations=4000)
        system = ProtocolMemorySystem(
            config, mapping, mitigation=Blockhammer(config, T_RH)
        )
        system.run_trace(_requests(attack))
        assert system.stats.max_row_activations() <= T_RH

    def test_unprotected_breached(self, config):
        mapping = CoffeeLakeMapping(config)
        attack = double_sided_attack(mapping, victim_row=500, activations_per_side=1500)
        system = ProtocolMemorySystem(config, mapping)
        system.run_trace(_requests(attack))
        assert system.stats.max_row_activations() > T_RH


class TestCommandLevelBehaviour:
    def test_latencies_include_protocol_effects(self, config):
        mapping = CoffeeLakeMapping(config)
        system = ProtocolMemorySystem(config, mapping)
        rng = np.random.default_rng(0)
        lines = rng.integers(0, config.total_lines, 400, dtype=np.uint64)
        results = system.run_trace(
            [Request(int(line), i * 5e-9) for i, line in enumerate(lines)],
            collect_results=True,
        )
        t = system.engine.timing
        assert all(r.latency >= t.t_cl + t.t_burst - 1e-12 for r in results)
        assert system.stats.accesses == 400

    def test_migration_stall_blocks_channel(self, config):
        mapping = CoffeeLakeMapping(config)
        aqua = AQUA(config, T_RH)
        system = ProtocolMemorySystem(config, mapping, mitigation=aqua)
        # Hammer one row past the tracker threshold: conflict-alternate
        # two same-bank rows (built via the mapping inverse, so the bank
        # hash cannot route them apart).
        attack = double_sided_attack(mapping, victim_row=600, activations_per_side=80)
        results = system.run_trace(
            [Request(int(line), i * 60e-9) for i, line in enumerate(attack.lines)],
            collect_results=True,
        )
        assert aqua.migrations >= 1
        stalled = [r for r in results if r.mitigation_stall > 0]
        assert stalled
        assert system.stats.mitigation_stall_s > 0

    def test_rubix_mapping_composes(self, config):
        mapping = RubixSMapping(config, gang_size=4, seed=3)
        system = ProtocolMemorySystem(config, mapping, mitigation=AQUA(config, T_RH))
        rng = np.random.default_rng(1)
        lines = rng.integers(0, config.total_lines, 500, dtype=np.uint64)
        system.run_trace([Request(int(line), i * 10e-9) for i, line in enumerate(lines)])
        assert system.stats.max_row_activations() <= T_RH
