"""Integration tests for the experiment harness.

Each registered experiment runs at a tiny scale and must produce a
structurally valid result; a few spot checks assert the paper-shape
properties that survive even at tiny scale.
"""

import pytest

from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import ExperimentResult
from repro.experiments.runner import run_experiment

TINY = dict(scale=0.03, workload_limit=3)

ALL_IDS = [entry.experiment_id for entry in list_experiments()]


def _run(experiment_id, **overrides):
    kwargs = dict(TINY)
    kwargs.update(overrides)
    return run_experiment(experiment_id, kwargs["scale"], kwargs["workload_limit"])


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig1a", "fig1c", "fig3", "fig4", "fig7", "fig8", "fig9",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "table2", "table3", "table4", "table5",
            "sec48", "sec49", "sec57", "sec61", "sec62",
        }
        assert expected.issubset(set(ALL_IDS))

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register

        with pytest.raises(ValueError):
            register("fig1a", "dup")(lambda scale: None)


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_experiment_runs_and_formats(experiment_id):
    result = _run(experiment_id)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiment produced no rows"
    assert all(len(row) == len(result.headers) for row in result.rows)
    text = result.format()
    assert experiment_id in text
    assert result.headers[0] in text


class TestSpotChecks:
    def test_fig4_shape(self):
        result = run_experiment("fig4", scale=1.0, workload_limit=None)
        rows = result.row_map()
        # Baseline: stride/random hot, stream cold; encrypted: all cold.
        assert rows["stream"][1] == 0
        assert rows["stride-64"][1] == 1024
        assert rows["random"][1] >= 1000
        assert rows["stride-64"][2] <= 1
        assert rows["random"][2] <= 1

    def test_fig7_rubix_wins(self):
        result = _run("fig7")
        mean = result.row_map()["mean"]
        coffeelake, rubix = mean[1], mean[3]
        assert coffeelake > 20 * max(rubix, 0.5)

    def test_fig9_gang_sizes_all_cheap(self):
        result = _run("fig9")
        rows = result.row_map()
        # Every (scheme, GS) combination stays in the single digits; the
        # paper's exact GS1-vs-GS4 preference for Blockhammer is a ~1%
        # effect our model places within noise (see EXPERIMENTS.md).
        for scheme in ("aqua", "srs", "blockhammer"):
            assert all(v < 12 for v in rows[scheme][1:]), rows[scheme]

    def test_table5_security_labels(self):
        result = _run("table5")
        rows = result.rows
        assert any("Not Secure" in str(row[1]) for row in rows)
        assert sum("Secure" in str(row[1]) for row in rows) >= 6

    def test_fig1a_static_data(self):
        result = run_experiment("fig1a", None, None)
        assert result.column("t_rh")[0] == 139_000


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_run_single(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out

    def test_run_unknown(self):
        from repro.experiments.runner import main

        assert main(["run", "fig99"]) == 2

    def test_inspect(self, capsys):
        from repro.experiments.runner import main

        assert main(["inspect", "xz", "--scale", "0.03", "--mapping", "rubix-s"]) == 0
        out = capsys.readouterr().out
        assert "hot rows" in out
        assert "aqua" in out

    def test_inspect_unknown_workload(self):
        from repro.experiments.runner import main

        assert main(["inspect", "nosuch", "--scale", "0.03"]) == 2

    def test_inspect_unknown_mapping(self):
        from repro.experiments.runner import main

        assert main(["inspect", "xz", "--scale", "0.03", "--mapping", "warp"]) == 2
