"""Executable checks for the docs/TUTORIAL.md code paths.

Documentation that drifts is worse than none: each tutorial section's
snippet is replayed here (at reduced scale) so the documented API and
the documented *outcomes* stay true.
"""

import pytest

from repro import (
    AQUA,
    CoffeeLakeMapping,
    RubixDMapping,
    RubixSMapping,
    Simulator,
    TRR,
    baseline_config,
    spec_trace,
)
from repro.analysis.reverse_engineering import (
    linearity_score,
    recover_linear_bank_masks,
)
from repro.analysis.security import verify_mitigation
from repro.core.remap_engine import XorRemapEngine
from repro.dram.config import DRAMConfig
from repro.dram.protocol import ProtocolEngine
from repro.experiments.campaign import Campaign, MappingSpec
from repro.workloads.attacks import half_double_attack
from repro.workloads.synthetic import (
    ColdPool,
    HotSpots,
    PointerChase,
    SequentialScan,
    WorkloadBuilder,
)


@pytest.fixture(scope="module")
def config():
    return baseline_config()


@pytest.fixture(scope="module")
def simulator(config):
    return Simulator(config)


def test_section1_geometry(config):
    assert config.total_rows == 2097152
    assert config.line_addr_bits == 28
    assert config.lines_per_row == 128
    mapping = CoffeeLakeMapping(config)
    first = mapping.translate(0)
    last = mapping.translate(127)
    assert config.global_row(first) == config.global_row(last)


def test_section2_and_3_headline(config, simulator):
    mapping = CoffeeLakeMapping(config)
    trace = spec_trace("gcc", scale=0.1)
    stats, _ = simulator.window_stats(trace, mapping)
    assert 0.3 < stats.hit_rate < 0.6
    assert stats.hot_rows(64) > 1000

    rubix = RubixSMapping(config, gang_size=4)
    for scheme in ("aqua", "srs", "blockhammer"):
        base = simulator.run(trace, mapping, scheme=scheme, t_rh=128)
        best = simulator.run(trace, rubix, scheme=scheme, t_rh=128)
        assert base.slowdown_pct > 5 * best.slowdown_pct

    breakdown = simulator.run(
        trace, mapping, scheme="blockhammer", t_rh=128
    ).breakdown()
    assert breakdown["mitigation"] > 0.5


def test_section4_rubix_d(config, simulator):
    dynamic = RubixDMapping(config, gang_size=4, remap_rate=0.01)
    trace = spec_trace("gcc", scale=0.1)
    result = simulator.run(trace, dynamic, scheme="aqua", t_rh=128)
    assert result.remap_swaps > 0
    assert dynamic.storage_bytes == 512

    engine = XorRemapEngine(nbits=3, seed=7)
    before = engine.physical_layout().tolist()
    engine.remap_steps(4)
    assert engine.physical_layout().tolist() != before


def test_section5_builder(config, simulator):
    my_app = (
        WorkloadBuilder(seed=42)
        .add(HotSpots(rows=500, activations_per_row=150))
        .add(SequentialScan(rows=5_000, accesses=100_000))
        .add(PointerChase(rows=2_000, accesses=30_000))
        .add(ColdPool(rows=10_000, accesses_per_row=4))
        .build(name="my-app", mpki=5.0)
    )
    baseline = simulator.run(my_app, CoffeeLakeMapping(config), scheme="srs", t_rh=128)
    rubix = simulator.run(
        my_app, RubixSMapping(config, gang_size=4), scheme="srs", t_rh=128
    )
    assert baseline.slowdown_pct > 3 * rubix.slowdown_pct


def test_section6_campaign():
    records = Campaign(
        workloads=["xz"],
        mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
        schemes=["aqua"],
        thresholds=[128],
        scale=0.05,
    ).run()
    assert len(records) == 2
    assert {r["mapping"] for r in records} == {"coffeelake", "rubix-s-gs4"}


def test_section6_resilient_campaign(tmp_path):
    from repro.experiments.common import get_simulator
    from repro.resilience import ResilientExecutor, RetryPolicy
    from repro.resilience.faults import FaultPlan, FaultySimulator

    campaign = Campaign(
        workloads=["xz", "namd"],
        mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
        schemes=["blockhammer"],
        thresholds=[128],
        scale=0.05,
    )
    executor = ResilientExecutor(retry=RetryPolicy(max_attempts=3))
    plan = FaultPlan(fail_cells=("namd|Rubix-S",))
    records = campaign.run(
        executor=executor,
        journal=tmp_path / "sweep.jsonl",
        simulator=FaultySimulator(get_simulator(), plan),
    )
    statuses = {(r["workload"], r["mapping"]): r["status"] for r in records}
    assert statuses[("namd", "rubix-s-gs4")] == "error"
    assert sum(1 for s in statuses.values() if s == "ok") == 3

    # The journal makes the sweep resumable without re-simulating.
    resumed = Campaign(
        workloads=["xz", "namd"],
        mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
        schemes=["blockhammer"],
        thresholds=[128],
        scale=0.05,
    )
    resumed.run(resume_from=tmp_path / "sweep.jsonl")
    assert resumed.cells_executed == 0


def test_section6_parallel_campaign(tmp_path):
    def grid():
        return Campaign(
            workloads=["xz"],
            mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
            schemes=["aqua"],
            thresholds=[128],
            scale=0.05,
        )

    serial = grid().run()
    parallel = grid().run(workers=2, stats_cache_dir=tmp_path / "stats")
    assert parallel == serial  # the tutorial's headline claim

    # Per-process overrides cannot cross the pool boundary (documented
    # caveat in the parallel section).
    with pytest.raises(ValueError):
        from repro.resilience import ResilientExecutor

        grid().run(workers=2, executor=ResilientExecutor())


def test_section6_campaign_service():
    from repro.service import ChaosSpec, ServiceConfig, run_service

    grid = Campaign(
        workloads=["xz"],
        mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
        schemes=["aqua"],
        thresholds=[128],
        scale=0.05,
    )
    [records] = run_service([grid], config=ServiceConfig(workers=2))
    assert records == grid.run()

    chaos = ChaosSpec(seed=0, kill_before_frac=0.3, duplicate_frac=0.3)
    [records] = run_service(
        [grid],
        config=ServiceConfig(workers=2, lease_timeout_s=2.0, max_worker_restarts=16),
        chaos=chaos,
    )
    assert records == grid.run()


def test_section6_telemetry(tmp_path):
    from repro import obs
    from repro.experiments.common import clear_caches

    clear_caches()  # warm stats caches would short-circuit sim.* metrics
    obs.reset()
    obs.configure(enabled=True, telemetry_dir=tmp_path / "sweep")
    manifest = obs.RunManifest.create("tutorial-sweep", config={"scale": 0.05})
    try:
        Campaign(
            workloads=["xz"],
            mappings=[MappingSpec("coffeelake")],
            schemes=["aqua"],
            thresholds=[128],
            scale=0.05,
        ).run()
        obs.write_telemetry(manifest=manifest)
        summary = obs.summarize_dir(tmp_path / "sweep")
    finally:
        obs.reset()
    assert "tutorial-sweep" in summary
    assert (tmp_path / "sweep" / "metrics.prom").exists()
    assert obs.validate_telemetry_dir(tmp_path / "sweep") == []


def test_section7_security():
    small = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=8192)
    cl = CoffeeLakeMapping(small)
    attack = half_double_attack(cl, victim_row=1000, far_activations=20000)
    assert not verify_mitigation(small, cl, TRR(small, 128), attack, t_rh=128).secure
    assert verify_mitigation(small, cl, AQUA(small, 128), attack, t_rh=128).secure

    model = recover_linear_bank_masks(cl, samples=1024)
    assert linearity_score(cl, model, samples=512) == pytest.approx(1.0)
    rubix = RubixSMapping(small, gang_size=4)
    model = recover_linear_bank_masks(rubix, samples=1024)
    assert linearity_score(rubix, model, samples=512) < 0.4


def test_section8_playbooks():
    import numpy as np

    from repro.workloads.attacks import double_sided_attack, double_sided_spec
    from repro.workloads.fuzzer import FuzzConfig, fuzz
    from repro.workloads.playbook import compile_playbook, workload_name_for

    config = baseline_config()
    cl = CoffeeLakeMapping(config)
    spec = double_sided_spec(victim_row=1000)
    attack = compile_playbook(spec, cl)
    assert np.array_equal(attack.lines, double_sided_attack(cl, victim_row=1000).lines)

    records = Campaign(
        workloads=[workload_name_for(spec)],
        mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
        schemes=["none"],
        thresholds=[128],
        scale=1.0,
    ).run()
    by_mapping = {r["mapping"]: r for r in records}
    assert by_mapping["coffeelake"]["hot_rows_512"] == 2
    assert by_mapping["rubix-s-gs4"]["hot_rows_512"] == 0
    # The aggressor pair lands in different banks under Rubix-S, so the
    # alternation stops forcing an ACT per access.
    assert by_mapping["rubix-s-gs4"]["activations"] < (
        by_mapping["coffeelake"]["activations"] / 10
    )

    result = fuzz(
        double_sided_spec(victim_row=1000, activations_per_side=16),
        {"rounds": [16, 64, 256]},
        config=FuzzConfig(min_hot_rows=2),
    )
    assert result.minimal_overrides == {"rounds": 64}


def test_section9_commands():
    small = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=8192)
    cl = CoffeeLakeMapping(small)
    engine = ProtocolEngine(small, collect_commands=True)
    engine.access(cl.translate(0), 0.0)
    engine.access(cl.translate(1), 50e-9)
    kinds = [c.kind.value for c in engine.commands]
    assert kinds == ["ACT", "RD", "RD"]
