"""Integration tests: the campaign service matches serial runs -- under chaos.

The acceptance contract of the fault-tolerant service: a 24-cell grid
(including Rubix-D cells with mutable remap state) submitted by
concurrent tenants, while the seeded chaos harness kills workers, stalls
heartbeats, and duplicates/reorders completions, still produces records
identical to a serial ``Campaign.run`` -- with every cell committed to
the journal exactly once, and a drained-then-restarted scheduler
resuming from that journal without recomputing anything.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.errors import ServiceSaturated
from repro.experiments.campaign import Campaign, MappingSpec, campaign_from_spec
from repro.resilience.journal import CheckpointJournal
from repro.service import (
    CampaignService,
    ChaosSpec,
    ServiceConfig,
    cell_digest,
    planned_faults,
    run_service,
    truncate_journal_tail,
)

WORKLOADS = ["xz", "namd", "lbm"]
MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
]

#: Chosen so the 24-cell grid's first-attempt schedule contains multiple
#: kills of *both* flavors, heartbeat-stalling hangs, and duplicated
#: completions (asserted in test_chaos_schedule_is_adversarial_enough).
CHAOS = ChaosSpec(
    seed=2,
    kill_before_frac=0.15,
    kill_after_frac=0.1,
    hang_frac=0.08,
    hang_s=1.5,
    duplicate_frac=0.15,
    reorder_every=4,
)

#: Short leases so hang-induced expiries happen inside test time.
CHAOS_CONFIG = ServiceConfig(
    workers=3,
    lease_timeout_s=0.8,
    heartbeat_interval_s=0.15,
    max_worker_restarts=64,
)


def make_campaign(**overrides) -> Campaign:
    kwargs = dict(
        workloads=WORKLOADS,
        mappings=MAPPINGS,
        schemes=["aqua", "blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


def grid_digests(campaign: Campaign) -> set:
    payload = campaign.parallel_payload()
    return {
        cell_digest(payload, campaign.cell_key(*cell)) for cell in campaign.cells()
    }


class TestServiceMatchesSerial:
    def test_24_cell_grid_identical_records(self):
        campaign = make_campaign()
        assert campaign.size() == 24
        serial = make_campaign().run()
        parallel = make_campaign().run(workers=4)
        [service] = run_service([make_campaign()], config=ServiceConfig(workers=3))
        assert service == parallel == serial
        assert all(record["status"] == "ok" for record in service)


class TestServiceUnderChaos:
    def test_chaos_schedule_is_adversarial_enough(self):
        """The seed must actually produce the failure mix we claim to test."""
        campaign = make_campaign()
        keys = [campaign.cell_key(*cell) for cell in campaign.cells()]
        plan = [decision for _, decision in planned_faults(CHAOS, keys)]
        kills = [d for d in plan if d.action in ("kill-before", "kill-after")]
        assert len(kills) >= 2, "chaos seed must kill at least two workers"
        assert any(d.action == "kill-before" for d in plan)
        assert any(d.action == "kill-after" for d in plan)
        assert any(d.action == "hang" for d in plan)
        assert sum(d.duplicate for d in plan) >= 2

    def test_chaos_run_matches_serial_with_exactly_once_journal(self, tmp_path):
        journal_path = tmp_path / "service.jsonl"
        serial = make_campaign().run()
        campaign = make_campaign()
        [records] = run_service(
            [campaign], config=CHAOS_CONFIG, journal=journal_path, chaos=CHAOS
        )
        assert records == serial
        # Exactly-once commitment: one journal entry per cell digest,
        # despite kills, re-dispatches, duplicates, and reordering.
        entries = CheckpointJournal(journal_path).load()
        assert len(entries) == 24
        assert {entry["key"] for entry in entries} == grid_digests(campaign)
        # Every committed entry is stamped with its lease identity.
        for entry in entries:
            assert entry["attempt"] >= 1 and "lease_id" in entry

    def test_concurrent_tenants_dedupe_and_converge(self, tmp_path):
        """Two overlapping grids under chaos: shared cells run once."""
        journal_path = tmp_path / "tenants.jsonl"
        alice = make_campaign(schemes=["aqua"])  # 12 cells
        bob = make_campaign(workloads=["xz", "namd"])  # 16 cells, 8 shared
        results = run_service(
            [make_campaign(schemes=["aqua"]), make_campaign(workloads=["xz", "namd"])],
            config=CHAOS_CONFIG,
            journal=journal_path,
            chaos=CHAOS,
            tenants=["alice", "bob"],
        )
        assert results[0] == alice.run()
        assert results[1] == bob.run()
        union = grid_digests(alice) | grid_digests(bob)
        entries = CheckpointJournal(journal_path).load()
        assert len(entries) == len(union)  # shared cells committed once
        assert {entry["key"] for entry in entries} == union


class TestDrainRestartResume:
    def test_restarted_scheduler_resumes_without_recompute(self, tmp_path):
        journal_path = tmp_path / "resume.jsonl"
        serial = make_campaign().run()
        # First service run: half the grid, under chaos.
        half = make_campaign(thresholds=[128])
        run_service([half], config=CHAOS_CONFIG, journal=journal_path, chaos=CHAOS)
        first_entries = {
            entry["key"]: entry for entry in CheckpointJournal(journal_path).load()
        }
        assert len(first_entries) == 12

        # Restarted scheduler, full grid, telemetry on: only the 12 new
        # cells may be dispatched; the committed ones replay byte-identically.
        obs.reset()
        obs.configure(enabled=True)
        try:
            [records] = run_service(
                [make_campaign()], config=ServiceConfig(workers=2), journal=journal_path
            )
            dispatches = obs.METRICS.counter_value("service.dispatches")
            resumed = obs.METRICS.counter_value("service.cells", result="resumed")
        finally:
            obs.reset()
        assert records == serial
        assert dispatches == 12, "committed cells must not be re-dispatched"
        assert resumed == 12
        second_entries = {
            entry["key"]: entry for entry in CheckpointJournal(journal_path).load()
        }
        assert len(second_entries) == 24
        for key, entry in first_entries.items():
            assert second_entries[key] == entry  # byte-identical resume

    def test_torn_journal_resumes_and_heals(self, tmp_path):
        journal_path = tmp_path / "torn.jsonl"
        serial = make_campaign().run()
        run_service([make_campaign()], config=ServiceConfig(workers=2), journal=journal_path)
        truncate_journal_tail(journal_path, seed=3)
        # The torn record's cell simply re-runs; everything else resumes.
        [records] = run_service(
            [make_campaign()], config=ServiceConfig(workers=2), journal=journal_path
        )
        assert records == serial
        entries = CheckpointJournal(journal_path).load()
        assert len(entries) == 24  # healed: the torn cell was re-committed


class TestAdmissionControl:
    def test_oversized_submission_is_rejected(self):
        async def main():
            config = ServiceConfig(workers=1, max_pending_cells=4)
            async with CampaignService(config) as service:
                small = make_campaign(
                    workloads=["xz"], schemes=["aqua"], thresholds=[128]
                )  # 2 cells: admitted
                handle = await service.submit(small, tenant="ok")
                with pytest.raises(ServiceSaturated) as exc_info:
                    await service.submit(make_campaign(), tenant="greedy")
                assert exc_info.value.context["limit"] == 4
                await handle.result()

        asyncio.run(main())

    def test_draining_service_refuses_submissions(self):
        async def main():
            async with CampaignService(ServiceConfig(workers=1)) as service:
                small = make_campaign(
                    workloads=["xz"], schemes=["aqua"], thresholds=[128]
                )
                handle = await service.submit(small)
                await handle.result()
                service._draining = True
                with pytest.raises(ServiceSaturated):
                    await service.submit(small)
                service._draining = False  # let __aexit__ drain normally

        asyncio.run(main())


class TestServiceWorkerEnvironment:
    def test_stats_cache_and_manifest_worker_identity(self, tmp_path, monkeypatch):
        """Satellite contract: service workers get the same REPRO_STATS_CACHE
        propagation as pool workers, and every spawned worker (including
        chaos respawns) is recorded in the run manifest."""
        from repro.obs.manifest import RunManifest
        from repro.parallel.cache import STATS_CACHE_ENV

        cache_dir = tmp_path / "stats"
        monkeypatch.setenv(STATS_CACHE_ENV, str(cache_dir))
        manifest = RunManifest.create("test.service", argv=[])
        campaign = make_campaign(workloads=["xz"], schemes=["blockhammer"], thresholds=[128])
        [records] = run_service(
            [campaign],
            config=ServiceConfig(workers=2, mp_context="spawn"),
            manifest=manifest,
        )
        assert all(record["status"] == "ok" for record in records)
        # 'spawn' workers start cold; their analyses must hit the shared
        # on-disk cache configured through the environment.
        assert list(cache_dir.glob("*.npz")), "service workers should use the env cache"
        assert len(manifest.workers) == 2
        for entry in manifest.workers:
            assert entry["worker_id"].startswith("w") and entry["pid"]
            assert entry["stats_cache_dir"] == str(cache_dir)
        # The manifest round-trips the worker list.
        path = manifest.finalize().write(tmp_path / "manifest.json")
        assert RunManifest.load(path).workers == manifest.workers

    def test_chaos_respawns_recorded_in_manifest(self, tmp_path):
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.create("test.service.chaos", argv=[])
        [records] = run_service(
            [make_campaign()], config=CHAOS_CONFIG, chaos=CHAOS, manifest=manifest
        )
        assert all(record["status"] == "ok" for record in records)
        replacements = [w for w in manifest.workers if w["replaces"]]
        assert len(manifest.workers) > CHAOS_CONFIG.workers
        assert replacements, "killed workers should appear as respawns"


class TestSpecRoundTrip:
    def test_campaign_from_spec_matches_direct_construction(self):
        spec = {
            "workloads": WORKLOADS,
            "mappings": [
                "coffeelake",
                {"kind": "rubix-d", "gang_size": 4, "remap_rate": 0.01},
            ],
            "schemes": ["aqua", "blockhammer"],
            "thresholds": [128, 512],
            "scale": 0.05,
            "tenant": "alice",
        }
        campaign = campaign_from_spec(json.loads(json.dumps(spec)))
        direct = make_campaign()
        assert campaign.size() == direct.size() == 24
        assert [campaign.cell_key(*c) for c in campaign.cells()] == [
            direct.cell_key(*c) for c in direct.cells()
        ]

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec key"):
            campaign_from_spec({"workloads": ["xz"], "mapings": ["coffeelake"]})
        with pytest.raises(ValueError, match="mapping"):
            campaign_from_spec({"workloads": ["xz"], "mappings": [42]})
        with pytest.raises(ValueError):
            campaign_from_spec([1, 2, 3])
