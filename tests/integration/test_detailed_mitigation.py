"""Integration: mitigations running inside the detailed memory system.

The unit tests poke mitigation classes directly; these tests run real
(small) workloads through the queued FR-FCFS front end with a mitigation
attached and check that the machinery composes: redirects apply to
subsequent requests, stalls appear in the latency accounting, and
per-window activation bounds hold on *benign* traffic too.
"""

import numpy as np
import pytest

from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.dram.memory_system import MemorySystem, Request
from repro.mapping.intel import CoffeeLakeMapping
from repro.mitigations.aqua import AQUA
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.srs import SRS

T_RH = 128


@pytest.fixture(scope="module")
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=2048)


def _benign_hotspot_trace(config, accesses=6000, seed=0):
    """Benign-like traffic: most accesses hammer 4 'hot pages', the rest
    spray -- enough to cross AQUA/SRS thresholds a handful of times."""
    rng = np.random.default_rng(seed)
    row_stride = config.lines_per_row * config.banks
    hot = rng.integers(0, 4, accesses) * row_stride + rng.integers(
        0, config.lines_per_row, accesses
    )
    cold = rng.integers(10, 500, accesses) * row_stride + rng.integers(
        0, config.lines_per_row, accesses
    )
    lines = np.where(rng.random(accesses) < 0.7, hot, cold).astype(np.uint64)
    return [Request(line_addr=int(line), arrival=i * 60e-9) for i, line in enumerate(lines)]


class TestAQUADetailed:
    def test_migrations_and_redirects(self, config):
        aqua = AQUA(config, T_RH)
        system = MemorySystem(config, CoffeeLakeMapping(config), mitigation=aqua)
        system.run_trace(_benign_hotspot_trace(config))
        assert aqua.migrations >= 4  # each hot page crosses 64 acts
        # Quarantine rows absorbed follow-on activations.
        quarantine_rows = [
            row
            for row in system.stats.acts_per_row
            if aqua.is_quarantine_row(row)
        ]
        assert quarantine_rows
        assert system.stats.max_row_activations() <= T_RH

    def test_channel_stall_accounted(self, config):
        aqua = AQUA(config, T_RH)
        system = MemorySystem(config, CoffeeLakeMapping(config), mitigation=aqua)
        system.run_trace(_benign_hotspot_trace(config))
        assert system.stats.mitigation_stall_s == pytest.approx(
            aqua.migrations * aqua.costs.migration_s
        )


class TestSRSDetailed:
    def test_swaps_bound_window_activations(self, config):
        srs = SRS(config, T_RH)
        system = MemorySystem(config, CoffeeLakeMapping(config), mitigation=srs)
        system.run_trace(_benign_hotspot_trace(config, seed=1))
        assert srs.swaps >= 4
        assert system.stats.max_row_activations() <= T_RH

    def test_srs_with_rubix_mapping(self, config):
        baseline_srs = SRS(config, T_RH)
        baseline = MemorySystem(
            config, CoffeeLakeMapping(config), mitigation=baseline_srs
        )
        baseline.run_trace(_benign_hotspot_trace(config, seed=2))

        srs = SRS(config, T_RH)
        mapping = RubixSMapping(config, gang_size=4, seed=11)
        system = MemorySystem(config, mapping, mitigation=srs)
        system.run_trace(_benign_hotspot_trace(config, seed=2))
        # Rubix scatters the hot pages: each gang lands near (sometimes
        # past) the T/3 threshold, but swaps drop by a large factor.
        assert srs.swaps < baseline_srs.swaps / 4
        assert system.stats.max_row_activations() <= T_RH


class TestBlockhammerDetailed:
    def test_throttling_emerges_and_bounds_rows(self, config):
        bh = Blockhammer(config, T_RH)
        system = MemorySystem(config, CoffeeLakeMapping(config), mitigation=bh)
        system.run_trace(_benign_hotspot_trace(config, seed=3))
        assert bh.throttled_activations > 0
        assert system.stats.max_row_activations() <= T_RH

    def test_rubix_eliminates_throttling(self, config):
        bh = Blockhammer(config, T_RH)
        mapping = RubixSMapping(config, gang_size=1, seed=4)
        system = MemorySystem(config, mapping, mitigation=bh)
        system.run_trace(_benign_hotspot_trace(config, seed=3))
        assert bh.throttled_activations == 0
