"""Integration tests: parallel campaigns match serial ones exactly.

The contract under test is the tentpole guarantee: ``Campaign.run``
with ``workers=N`` produces record-for-record identical output to a
serial sweep of the same grid -- including for Rubix-D mappings with
mutable remap state -- and the checkpoint journal written by a parallel
run resumes interchangeably with a serial one.

No wall-clock assertions anywhere: CI machines may have a single core,
where a process pool is correct but not faster.
"""

import pytest

from repro.experiments.campaign import Campaign, MappingSpec
from repro.experiments.common import get_simulator
from repro.resilience.executor import ResilientExecutor
from repro.resilience.faults import FaultPlan, FaultySimulator, SimulatedCrash
from repro.resilience.journal import CheckpointJournal

WORKLOADS = ["xz", "namd", "lbm"]
#: One stateless mapping and one with mutable remap state (rubix-d with
#: a nonzero remap rate) -- the hard case for order-independence.
MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
]


def make_campaign(**overrides) -> Campaign:
    kwargs = dict(
        workloads=WORKLOADS,
        mappings=MAPPINGS,
        schemes=["aqua", "blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


class TestParallelMatchesSerial:
    def test_24_cell_grid_identical_records(self):
        serial = make_campaign().run()
        campaign = make_campaign()
        parallel = campaign.run(workers=4)
        assert len(serial) == campaign.size() == 24
        assert parallel == serial
        assert campaign.cells_executed == 24
        assert all(record["status"] == "ok" for record in parallel)

    def test_workers_1_uses_serial_path(self):
        # workers=1 must be exactly the serial code path (it accepts the
        # per-process simulator/executor overrides parallel mode rejects).
        campaign = make_campaign(workloads=["xz"], thresholds=[128])
        records = campaign.run(workers=1, executor=ResilientExecutor())
        assert len(records) == campaign.size() == 4

    def test_identical_records_across_backends_and_modes(self):
        """Serial == parallel, per backend AND across backends.

        The kernel-backend tiers are bit-identical by contract, so every
        (backend, workers) combination of the same grid must produce one
        identical record list -- the property that lets pool workers,
        journals, and the stats cache ignore backend choice entirely.
        """
        from repro.perf.backends import available_backends

        grids = {}
        for backend in available_backends():
            grids[(backend, "serial")] = make_campaign(
                workloads=["xz"], thresholds=[128], backend=backend
            ).run()
            grids[(backend, "parallel")] = make_campaign(
                workloads=["xz"], thresholds=[128], backend=backend
            ).run(workers=2)
        baseline = grids[("numpy", "serial")]
        assert all(r["status"] == "ok" for r in baseline)
        for key, records in grids.items():
            assert records == baseline, f"{key} diverged from (numpy, serial)"


class TestValidation:
    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            make_campaign().run(workers=0)

    def test_executor_override_rejected_in_parallel(self):
        with pytest.raises(ValueError, match="workers=1"):
            make_campaign().run(workers=2, executor=ResilientExecutor())

    def test_simulator_override_rejected_in_parallel(self):
        with pytest.raises(ValueError, match="workers=1"):
            make_campaign().run(workers=2, simulator=get_simulator())

    def test_journal_and_resume_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            make_campaign().run(
                journal=tmp_path / "a.jsonl", resume_from=tmp_path / "b.jsonl"
            )


class TestParallelResume:
    def test_parallel_resume_completes_interrupted_serial_run(self, tmp_path):
        expected = make_campaign().run()

        journal_path = tmp_path / "campaign.jsonl"
        crashing = FaultySimulator(get_simulator(), FaultPlan(crash_after_cells=5))
        with pytest.raises(SimulatedCrash):
            make_campaign().run(simulator=crashing, journal=journal_path)
        journal = CheckpointJournal(journal_path)
        assert len(journal.completed()) == 5

        resumed_campaign = make_campaign()
        records = resumed_campaign.run(workers=2, resume_from=journal_path)
        assert records == expected
        # Only the 19 unfinished cells were re-dispatched.
        assert resumed_campaign.cells_executed == 19
        assert len(CheckpointJournal(journal_path).completed()) == 24

    def test_parallel_journal_resumes_serially(self, tmp_path):
        # A journal written by a parallel run is a plain cell-keyed
        # checkpoint: a serial resume accepts it unchanged.
        expected = make_campaign().run()
        journal_path = tmp_path / "parallel.jsonl"
        first = make_campaign()
        first.run(workers=2, journal=journal_path)
        resumed = make_campaign()
        records = resumed.run(resume_from=journal_path)
        assert records == expected
        assert resumed.cells_executed == 0  # everything replayed from journal


class TestSharedStatsCache:
    def test_spawn_workers_populate_disk_cache(self, tmp_path):
        # 'spawn' workers start cold (no inherited in-memory caches), so
        # their analyses must land in the shared on-disk cache.
        cache_dir = tmp_path / "stats"
        campaign = make_campaign(
            workloads=["xz"], schemes=["blockhammer"], thresholds=[128]
        )
        records = campaign.run(
            workers=2, stats_cache_dir=cache_dir, mp_context="spawn"
        )
        assert all(record["status"] == "ok" for record in records)
        entries = list(cache_dir.glob("*.npz"))
        assert entries, "cold workers should persist their window statistics"
