"""Integration tests: the campaign service over TCP matches serial runs.

The distributed acceptance contract: the same 24-cell grid (including
Rubix-D cells with mutable remap state) computed by socket workers on
the other side of a real TCP connection -- while the seeded wire-fault
layer drops, corrupts, truncates, delays, and duplicates completion
frames and severs connections -- still produces records byte-identical
to a serial ``Campaign.run``, with every cell committed to the journal
exactly once and lost work recovered through epoch-bumped re-dispatch.
And when no worker ever connects, the scheduler degrades to a local
Pipe pool rather than hanging.
"""

import asyncio

from repro.experiments.campaign import Campaign, MappingSpec
from repro.resilience.journal import CheckpointJournal
from repro.service import (
    CampaignService,
    ChaosSpec,
    ServiceConfig,
    cell_digest,
    planned_wire_faults,
    spawn_net_workers,
)

WORKLOADS = ["xz", "namd", "lbm"]
MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
]

#: Verified to give the 24-cell grid's first-attempt schedule >= 2
#: connection drops, >= 1 corrupt frame, and >= 1 vanished frame
#: (asserted in test_wire_chaos_schedule_is_adversarial_enough).
WIRE_CHAOS = ChaosSpec(
    seed=1,
    wire_drop_frac=0.12,
    wire_corrupt_frac=0.15,
    wire_truncate_frac=0.08,
    wire_conn_drop_frac=0.10,
    wire_delay_frac=0.1,
    wire_delay_s=0.05,
    wire_duplicate_frac=0.1,
)

#: Short leases so a dropped completion frame expires inside test time;
#: a long fallback deadline so degraded mode never triggers while the
#: socket workers are the thing under test.
NET_CONFIG = dict(
    workers=3,
    lease_timeout_s=1.0,
    heartbeat_interval_s=0.15,
    listen="127.0.0.1:0",
    local_fallback_deadline_s=60.0,
    frame_timeout_s=5.0,
)


def make_campaign(**overrides) -> Campaign:
    kwargs = dict(
        workloads=WORKLOADS,
        mappings=MAPPINGS,
        schemes=["aqua", "blockhammer"],
        thresholds=[128, 512],
        scale=0.05,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


def grid_digests(campaign: Campaign) -> set:
    payload = campaign.parallel_payload()
    return {
        cell_digest(payload, campaign.cell_key(*cell)) for cell in campaign.cells()
    }


def run_distributed(campaign, *, config, n_workers, chaos=None, journal=None):
    """One campaign through a listening scheduler + socket workers.

    Workers are real spawned processes dialing the scheduler's ephemeral
    port; wire chaos (if any) runs worker-side, on real sockets.
    Returns (records, stats, worker_exitcodes).
    """
    processes = []

    async def _main():
        async with CampaignService(config, journal=journal) as service:
            processes.extend(
                spawn_net_workers(
                    service.listen_address, n_workers, chaos_spec=chaos
                )
            )
            handle = await service.submit(campaign)
            records = await handle.result()
            return records, service.stats()

    try:
        records, stats = asyncio.run(_main())
        for process in processes:
            process.join(timeout=10)
        return records, stats, [process.exitcode for process in processes]
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)


class TestDistributedMatchesSerial:
    def test_24_cell_grid_identical_over_tcp(self):
        campaign = make_campaign()
        assert campaign.size() == 24
        serial = make_campaign().run()
        parallel = make_campaign().run(workers=4)
        networked, stats, exitcodes = run_distributed(
            make_campaign(), config=ServiceConfig(**NET_CONFIG), n_workers=3
        )
        assert networked == parallel == serial
        assert all(record["status"] == "ok" for record in networked)
        assert stats["committed"] == 24
        assert not stats["fallback_engaged"]
        assert exitcodes == [0, 0, 0]  # clean goodbye on drain


class TestDistributedUnderWireChaos:
    def test_wire_chaos_schedule_is_adversarial_enough(self):
        """The seed must actually produce the failure mix we claim to test."""
        campaign = make_campaign()
        keys = [campaign.cell_key(*cell) for cell in campaign.cells()]
        plan = [decision for _, decision in planned_wire_faults(WIRE_CHAOS, keys)]
        assert sum(d.drops_connection for d in plan) >= 2
        assert sum(d.fate == "corrupt" for d in plan) >= 1
        assert sum(d.fate == "drop" for d in plan) >= 1

    def test_chaos_run_matches_serial_with_exactly_once_journal(self, tmp_path):
        journal_path = tmp_path / "distributed.jsonl"
        serial = make_campaign().run()
        campaign = make_campaign()
        records, stats, _ = run_distributed(
            campaign,
            config=ServiceConfig(**NET_CONFIG),
            n_workers=3,
            chaos=WIRE_CHAOS,
            journal=journal_path,
        )
        assert records == serial  # byte-identical through every fault
        assert stats["committed"] == 24 and not stats["fallback_engaged"]
        # Exactly-once commitment despite dropped, duplicated, corrupted,
        # and torn completion frames: one journal entry per cell digest.
        entries = CheckpointJournal(journal_path).load()
        assert len(entries) == 24
        assert {entry["key"] for entry in entries} == grid_digests(campaign)
        # Lost frames and severed connections force re-dispatch: at
        # least one committed cell must carry a bumped epoch or a
        # second attempt -- proof recovery actually ran.
        redispatched = [
            entry for entry in entries if entry["epoch"] > 0 or entry["attempt"] > 1
        ]
        assert redispatched, "wire chaos must force at least one re-dispatch"
        for entry in entries:
            assert entry["attempt"] >= 1 and "lease_id" in entry


class TestDegradedMode:
    def test_no_workers_falls_back_to_local_pool(self):
        """A listening scheduler nobody dials still completes the grid."""
        campaign = make_campaign(
            workloads=["xz"], schemes=["aqua"], thresholds=[128, 512]
        )  # 4 cells
        serial = make_campaign(
            workloads=["xz"], schemes=["aqua"], thresholds=[128, 512]
        ).run()
        config = ServiceConfig(
            workers=2,
            listen="127.0.0.1:0",
            local_fallback_deadline_s=0.5,
            heartbeat_interval_s=0.15,
        )
        records, stats, _ = run_distributed(campaign, config=config, n_workers=0)
        assert records == serial
        assert stats["fallback_engaged"]
        assert stats["committed"] == 4
