"""Security integration tests (Sections 4.10 / 5.5 and Table 5).

Asserts the paper's security matrix:

* unprotected memory is breached by every attack;
* AQUA, SRS, and Blockhammer bound per-row activations below T_RH for
  every attack pattern (single-sided, double-sided, Half-Double);
* the guarantee is mapping-independent (Lemma 1) -- it holds under
  Coffee Lake, Rubix-S, and Rubix-D alike (Lemma 2);
* TRR survives the classic attacks but is broken by Half-Double.
"""

import pytest

from repro.dram.config import DRAMConfig
from repro.core.rubix_s import RubixSMapping
from repro.core.rubix_keyed_xor import KeyedXorMapping
from repro.analysis.security import verify_mitigation
from repro.mapping.intel import CoffeeLakeMapping
from repro.mitigations.aqua import AQUA
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.srs import SRS
from repro.mitigations.trr import TRR
from repro.workloads.attacks import (
    blacksmith_attack,
    blind_adjacency_attack,
    double_sided_attack,
    half_double_attack,
    many_sided_attack,
    single_sided_attack,
)

T_RH = 128


@pytest.fixture(scope="module")
def config():
    # Small geometry keeps the detailed replay fast; the guarantees are
    # geometry-independent.
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=4096)


def _attacks(mapping):
    return [
        single_sided_attack(mapping, aggressor_row=100, dummy_row=2000, activations=2000),
        double_sided_attack(mapping, victim_row=1000, activations_per_side=2000),
        half_double_attack(mapping, victim_row=1000, far_activations=8000),
    ]


def _mitigation(config, scheme):
    return {
        "aqua": lambda: AQUA(config, T_RH),
        "srs": lambda: SRS(config, T_RH),
        "blockhammer": lambda: Blockhammer(config, T_RH),
    }[scheme]()


class TestUnprotected:
    def test_all_attacks_breach(self, config):
        mapping = CoffeeLakeMapping(config)
        for attack in _attacks(mapping):
            report = verify_mitigation(config, mapping, None, attack, t_rh=T_RH)
            assert not report.secure, attack.name


@pytest.mark.parametrize("scheme", ["aqua", "srs", "blockhammer"])
class TestAggressorFocusedSchemes:
    def test_secure_under_coffeelake(self, config, scheme):
        mapping = CoffeeLakeMapping(config)
        for attack in _attacks(mapping):
            report = verify_mitigation(
                config, mapping, _mitigation(config, scheme), attack, t_rh=T_RH
            )
            assert report.secure, (attack.name, report)
            assert report.max_row_activations <= T_RH

    def test_secure_under_rubix_s(self, config, scheme):
        # Lemma 1 + Lemma 2: the same guarantee under a randomized
        # mapping.  The attacker even gets the mapping inverse (a
        # best-case adversary who fully reverse-engineered Rubix-S).
        mapping = RubixSMapping(config, gang_size=4, seed=77)
        for attack in _attacks(mapping):
            report = verify_mitigation(
                config, mapping, _mitigation(config, scheme), attack, t_rh=T_RH
            )
            assert report.secure, (attack.name, report)

    def test_secure_under_keyed_xor(self, config, scheme):
        mapping = KeyedXorMapping(config, gang_size=4)
        attack = blind_adjacency_attack(
            base_line=128 * 64, lines_per_row=config.lines_per_row, activations=4000
        )
        report = verify_mitigation(
            config, mapping, _mitigation(config, scheme), attack, t_rh=T_RH
        )
        assert report.secure


class TestTRR:
    def test_survives_classic_attacks(self, config):
        mapping = CoffeeLakeMapping(config)
        for attack in _attacks(mapping)[:2]:
            report = verify_mitigation(
                config, mapping, TRR(config, T_RH), attack, t_rh=T_RH
            )
            assert report.secure, attack.name

    def test_broken_by_half_double(self, config):
        mapping = CoffeeLakeMapping(config)
        attack = half_double_attack(mapping, victim_row=1000, far_activations=20000)
        report = verify_mitigation(
            config, mapping, TRR(config, T_RH), attack, t_rh=T_RH
        )
        assert report.half_double_breach
        assert not report.secure

    def test_half_double_needs_scale(self, config):
        # Below ~100x T_RH far activations the refresh side channel
        # cannot accumulate enough disturbance.
        mapping = CoffeeLakeMapping(config)
        attack = half_double_attack(mapping, victim_row=1000, far_activations=1000)
        report = verify_mitigation(
            config, mapping, TRR(config, T_RH), attack, t_rh=T_RH
        )
        assert report.secure


@pytest.mark.parametrize("scheme", ["aqua", "srs", "blockhammer"])
class TestComplexPatterns:
    """TRRespass many-sided and Blacksmith non-uniform patterns: the
    aggressor-focused schemes bound every row regardless of pattern
    complexity (their guarantee is per-row, not per-pattern)."""

    def test_many_sided_bounded(self, config, scheme):
        mapping = CoffeeLakeMapping(config)
        attack = many_sided_attack(mapping, sides=10, rounds=400)
        report = verify_mitigation(
            config, mapping, _mitigation(config, scheme), attack, t_rh=T_RH
        )
        assert report.secure, report

    def test_blacksmith_bounded(self, config, scheme):
        mapping = CoffeeLakeMapping(config)
        attack = blacksmith_attack(mapping, sides=6, rounds=300)
        report = verify_mitigation(
            config, mapping, _mitigation(config, scheme), attack, t_rh=T_RH
        )
        assert report.secure, report

    def test_many_sided_breaches_unprotected(self, config, scheme):
        mapping = CoffeeLakeMapping(config)
        attack = many_sided_attack(mapping, sides=10, rounds=400)
        report = verify_mitigation(config, mapping, None, attack, t_rh=T_RH)
        assert not report.secure


class TestRandomizationDefense:
    def test_blind_attacker_cannot_concentrate_on_rubix(self, config):
        # An attacker without mapping knowledge hammers baseline-adjacent
        # addresses; under Rubix-S those lines land in unrelated rows.
        mapping = RubixSMapping(config, gang_size=1, seed=3)
        attack = blind_adjacency_attack(
            base_line=128 * 500, lines_per_row=config.lines_per_row, activations=4000
        )
        report = verify_mitigation(config, mapping, None, attack, t_rh=T_RH)
        # Two alternating lines map to two rows; each gets its own
        # activations but they are not neighbours of any intended victim.
        mapped_rows = {
            config.global_row(mapping.translate(int(line)))
            for line in attack.lines[:4]
        }
        baseline_rows = {
            config.global_row(CoffeeLakeMapping(config).translate(int(line)))
            for line in attack.lines[:4]
        }
        # Under the baseline the two aggressor lines sit 2 rows apart;
        # under Rubix they are unrelated (different banks/rows).
        assert mapped_rows != baseline_rows
