"""Integration tests: resilient campaigns under injected faults.

Covers the acceptance scenario: a 3x2 campaign with one poisoned cell
completes with an error record for exactly that cell, and after a
simulated mid-sweep crash, resuming from the journal completes the grid
without re-running finished cells (verified by cell-execution counters).
"""

import pytest

from repro.errors import MappingConfigError, SchemeConfigError, WorkloadConfigError
from repro.experiments.campaign import Campaign, MappingSpec
from repro.experiments.common import get_simulator
from repro.resilience.executor import ResilientExecutor, RetryPolicy
from repro.resilience.faults import FaultPlan, FaultySimulator, SimulatedCrash
from repro.resilience.journal import CheckpointJournal

WORKLOADS = ["xz", "namd", "lbm"]
MAPPINGS = [MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)]


def make_campaign() -> Campaign:
    return Campaign(
        workloads=WORKLOADS,
        mappings=MAPPINGS,
        schemes=["blockhammer"],
        thresholds=[128],
        scale=0.05,
    )


def faulty(plan: FaultPlan) -> FaultySimulator:
    return FaultySimulator(get_simulator(), plan)


class TestFaultIsolation:
    def test_poisoned_cell_yields_error_record_others_complete(self):
        campaign = make_campaign()
        records = campaign.run(
            simulator=faulty(FaultPlan(fail_cells=("namd|Rubix-S",)))
        )
        assert len(records) == campaign.size() == 6
        errors = [r for r in records if r["status"] == "error"]
        assert len(errors) == 1
        (error,) = errors
        assert error["workload"] == "namd"
        assert error["mapping"] == "rubix-s-gs4"
        assert error["error_type"] == "FaultInjectedError"
        assert "normalized_performance" not in error
        for record in records:
            if record is not error:
                assert record["status"] == "ok"
                assert record["normalized_performance"] > 0

    def test_transient_fault_retries_to_success(self):
        campaign = make_campaign()
        executor = ResilientExecutor(
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0), sleep=lambda s: None
        )
        records = campaign.run(
            executor=executor,
            simulator=faulty(FaultPlan(transient_cells={"xz|CoffeeLake": 2})),
        )
        by_cell = {(r["workload"], r["mapping"]): r for r in records}
        flaky = by_cell[("xz", "coffeelake")]
        assert flaky["status"] == "ok" and flaky["attempts"] == 3
        assert all(r["status"] == "ok" for r in records)

    def test_dropped_mitigation_events_flagged_never_silent(self):
        campaign = make_campaign()
        records = campaign.run(
            simulator=faulty(FaultPlan(drop_mitigation_cells=("xz|CoffeeLake",)))
        )
        by_cell = {(r["workload"], r["mapping"]): r for r in records}
        tampered = by_cell[("xz", "coffeelake")]
        # xz under Coffee Lake has a >=T_RH row, so zero mitigations is
        # impossible -- the invariant check must flag the record.
        assert tampered["status"] == "degraded"
        assert "suspect-mitigation-count" in tampered["flags"]
        assert by_cell[("lbm", "coffeelake")]["status"] == "ok"


class TestCrashAndResume:
    def test_resume_completes_grid_without_rerunning(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"

        reference = make_campaign()
        expected = reference.run()
        assert reference.cells_executed == 6

        interrupted = make_campaign()
        with pytest.raises(SimulatedCrash):
            interrupted.run(
                journal=journal_path,
                simulator=faulty(FaultPlan(crash_after_cells=3)),
            )
        assert interrupted.cells_executed == 3
        assert len(CheckpointJournal(journal_path)) == 3

        resumed = make_campaign()
        records = resumed.run(resume_from=journal_path)
        # Only the unfinished half ran; the grid result is identical to
        # an uninterrupted sweep, including the journal-replayed cells.
        assert resumed.cells_executed == 3
        assert records == expected
        assert len(CheckpointJournal(journal_path)) == 6

    def test_resume_of_complete_journal_runs_nothing(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        first = make_campaign()
        expected = first.run(journal=journal_path)
        again = make_campaign()
        records = again.run(resume_from=journal_path)
        assert again.cells_executed == 0
        assert records == expected

    def test_journal_and_resume_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            make_campaign().run(
                journal=tmp_path / "a.jsonl", resume_from=tmp_path / "b.jsonl"
            )


class TestFailFastValidation:
    def test_unknown_workload_rejected_before_any_cell(self):
        with pytest.raises(WorkloadConfigError, match="stream-copy"):
            Campaign(workloads=["quake3"], mappings=MAPPINGS)

    def test_unknown_mapping_kind_rejected(self):
        with pytest.raises(MappingConfigError, match="rubix-s"):
            Campaign(workloads=["xz"], mappings=[MappingSpec("randomizer-9000")])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SchemeConfigError, match="blockhammer"):
            Campaign(workloads=["xz"], mappings=MAPPINGS, schemes=["magic"])

    def test_config_errors_are_value_errors_for_old_callers(self):
        with pytest.raises(ValueError):
            Campaign(workloads=["xz"], mappings=MAPPINGS, schemes=["magic"])


class TestRunnerJournalCLI:
    def test_run_all_style_journal_resume(self, tmp_path, capsys):
        from repro.experiments.runner import main

        journal = tmp_path / "suite.jsonl"
        assert main(["run", "fig1a", "--journal", str(journal)]) == 0
        assert CheckpointJournal(journal).completed_keys() == {"fig1a"}
        assert main(["run", "fig1a", "--journal", str(journal), "--resume"]) == 0
        assert "skipped (resume)" in capsys.readouterr().out

    def test_resume_requires_journal(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "fig1a", "--resume"]) == 2
