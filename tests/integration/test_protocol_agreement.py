"""Cross-validation: protocol engine vs the cheaper tiers.

Within one refresh interval the row-buffer *decisions* (hit vs activate)
are policy-determined and identical across tiers; the protocol engine's
constraints only move command times.  So on short in-order traces the
three tiers must agree exactly on activation counts, and the protocol
engine's latencies can only exceed the simple model's.
"""

import numpy as np
import pytest

from repro.dram.config import DRAMConfig
from repro.dram.fast_model import analyze_trace
from repro.dram.memory_system import MemorySystem, Request
from repro.dram.protocol import ProtocolEngine
from repro.dram.scheduler import FCFSScheduler
from repro.mapping.intel import CoffeeLakeMapping
from repro.mapping.linear import LinearMapping


@pytest.fixture(scope="module")
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=512)


def _mixed_lines(config, n, seed=0):
    rng = np.random.default_rng(seed)
    seq = np.arange(n // 2, dtype=np.uint64) % np.uint64(config.total_lines)
    rand = rng.integers(0, config.total_lines, n - n // 2, dtype=np.uint64)
    out = np.empty(n, dtype=np.uint64)
    out[0::2] = seq
    out[1::2] = rand
    return out


@pytest.mark.parametrize("mapping_cls", [LinearMapping, CoffeeLakeMapping])
def test_three_tiers_agree_on_activations(config, mapping_cls):
    mapping = mapping_cls(config)
    lines = _mixed_lines(config, 600)

    # Tier 1: vectorized analyzer.
    mapped = mapping.translate_trace(lines)
    fast = analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=16
    )

    # Tier 2: simple detailed model (FCFS, in order).
    system = MemorySystem(config, mapping, scheduler=FCFSScheduler(), queue_depth=1)
    system.run_trace([Request(int(line), i * 1e-9) for i, line in enumerate(lines)])

    # Tier 3: command-level protocol engine (10 ns arrivals keep the run
    # far inside the first tREFI, so no refresh interferes).
    engine = ProtocolEngine(config, max_hits=16)
    stats = engine.run_trace(mapping, lines, inter_arrival_s=1e-9)

    assert fast.n_activations == system.stats.activations == stats.activations
    assert stats.refreshes == 0


def test_protocol_latency_never_below_simple_model(config):
    mapping = CoffeeLakeMapping(config)
    lines = _mixed_lines(config, 300, seed=3)
    engine = ProtocolEngine(config, max_hits=16)
    stats = engine.run_trace(mapping, lines, inter_arrival_s=1e-9)
    # The simple model's best case is a row hit: tCL + burst.
    t = config.timing
    assert stats.avg_latency_s >= t.row_hit_latency - 1e-12


def test_refresh_adds_activations_on_long_runs(config):
    mapping = LinearMapping(config)
    # Re-touch the same row every 10 us for 100 touches: each refresh in
    # between closes it, forcing a re-activation the fast tier (which is
    # refresh-oblivious) does not see.
    engine = ProtocolEngine(config, max_hits=None)
    acts = 0
    for i in range(100):
        outcome = engine.access(mapping.translate(0), i * 10e-6)
        acts += outcome.activated
    assert engine.refreshes > 100  # many tREFI intervals elapsed
    assert acts > 50  # nearly every touch re-activates
