"""Integration tests for the telemetry layer over real campaigns.

The load-bearing contract: *semantic* metric totals (``campaign.*``,
``mitigation.*``, ``resilience.*``) are identical between a serial run
and a process-pool run of the same grid -- workers ship per-cell delta
snapshots and the parent merges them.  Operational families (cache
hits, span counts) legitimately differ with process topology and are
excluded from the equality check.
"""

import json
import os

import pytest

from repro import obs
from repro.experiments import common
from repro.experiments.campaign import Campaign, MappingSpec
from repro.resilience.journal import CheckpointJournal


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Pristine telemetry state around every test (and no env leakage)."""
    saved = {
        key: os.environ.pop(key, None)
        for key in (obs.TELEMETRY_DIR_ENV, obs.TELEMETRY_ENV)
    }
    obs.reset()
    try:
        yield
    finally:
        obs.reset()
        for key, value in saved.items():
            if value is not None:
                os.environ[key] = value


def tiny_campaign():
    return Campaign(
        workloads=["xz", "lbm"],
        mappings=[
            MappingSpec("coffeelake"),
            MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
        ],
        schemes=["aqua"],
        thresholds=[256],
        scale=0.05,
    )  # 2 x 2 x 1 x 1 = 4 cells


def run_with_telemetry(**run_kwargs):
    common.clear_caches()
    obs.reset()
    obs.configure(enabled=True)
    records = tiny_campaign().run(**run_kwargs)
    snapshot = obs.METRICS.snapshot()
    obs.reset()
    return records, snapshot


class TestSerialParallelEquality:
    def test_semantic_totals_identical_serial_vs_workers4(self):
        serial_records, serial_snap = run_with_telemetry()
        parallel_records, parallel_snap = run_with_telemetry(workers=4)
        assert serial_records == parallel_records
        semantic_serial = obs.filter_snapshot(serial_snap, obs.SEMANTIC_PREFIXES)
        semantic_parallel = obs.filter_snapshot(parallel_snap, obs.SEMANTIC_PREFIXES)
        assert semantic_serial == semantic_parallel

    def test_semantic_counters_actually_fired(self):
        _, snap = run_with_telemetry()
        counters = snap["counters"]
        assert counters["campaign.cells|status=ok"] == 4
        assert counters["resilience.cells|status=ok"] == 4
        assert counters["mitigation.invocations|scheme=aqua"] == pytest.approx(
            counters["campaign.mitigations|scheme=aqua"]
        )
        assert counters["campaign.activations"] > 0
        assert counters["campaign.remap_swaps"] > 0

    def test_parallel_run_reports_pool_metrics(self):
        _, snap = run_with_telemetry(workers=2)
        assert snap["counters"]["parallel.completions"] == 4
        assert snap["gauges"]["parallel.workers"] == 2
        assert snap["gauges"]["parallel.queue_depth"] == 0
        assert snap["histograms"]["parallel.cell_seconds"]["count"] == 4

    def test_snapshots_validate_against_schema(self):
        _, serial_snap = run_with_telemetry()
        _, parallel_snap = run_with_telemetry(workers=2)
        assert obs.validate_snapshot(serial_snap) == []
        assert obs.validate_snapshot(parallel_snap) == []


class TestJournalTimings:
    def test_serial_journal_records_durations(self, tmp_path):
        common.clear_caches()
        path = tmp_path / "serial.jsonl"
        tiny_campaign().run(journal=path)
        timings = CheckpointJournal(path).timings()
        assert len(timings) == 4
        for timing in timings.values():
            assert timing["duration_s"] > 0
            assert timing["worker_id"] == f"p{os.getpid()}"

    def test_parallel_journal_records_worker_ids(self, tmp_path):
        common.clear_caches()
        path = tmp_path / "parallel.jsonl"
        tiny_campaign().run(workers=2, journal=path)
        timings = CheckpointJournal(path).timings()
        assert len(timings) == 4
        workers = {timing["worker_id"] for timing in timings.values()}
        assert all(worker.startswith("p") for worker in workers)


class TestTelemetryArtifacts:
    def test_write_telemetry_emits_validating_artifacts(self, tmp_path):
        common.clear_caches()
        obs.configure(enabled=True, telemetry_dir=tmp_path)
        manifest = obs.RunManifest.create("integration-test", config={"cells": 4})
        tiny_campaign().run()
        written = obs.write_telemetry(manifest=manifest)
        assert set(written) == {"metrics", "prometheus", "manifest"}
        assert obs.validate_telemetry_dir(tmp_path) == []
        # Event streams captured the span hierarchy.
        events = []
        for path in tmp_path.glob("events-*.jsonl"):
            events += [json.loads(line) for line in path.read_text().splitlines()]
        span_paths = {e["path"] for e in events if e["type"] == "span"}
        assert any("campaign.run/campaign.cell" in p for p in span_paths)

    def test_prometheus_snapshot_readable(self, tmp_path):
        common.clear_caches()
        obs.configure(enabled=True, telemetry_dir=tmp_path)
        tiny_campaign().run()
        obs.write_telemetry()
        text = (tmp_path / "metrics.prom").read_text()
        assert 'repro_campaign_cells_total{status="ok"} 4' in text


class TestRunnerCLI:
    def test_telemetry_dir_flag_writes_artifacts(self, tmp_path, capsys):
        from repro.experiments.runner import main

        target = tmp_path / "telemetry"
        assert main(["run", "fig1a", "--telemetry-dir", str(target)]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert (target / "manifest.json").exists()
        assert (target / "metrics.jsonl").exists()
        assert (target / "metrics.prom").exists()
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["command"] == "experiments.run"
        assert manifest["finished_at"] is not None
        assert manifest["metrics"]["counters"]["runner.experiments|status=ok"] == 1
        # fig1a is data-only, so skip the campaign-metrics floor.
        assert obs.validate_telemetry_dir(target, required=()) == []

    def test_report_subcommand_summarizes(self, tmp_path, capsys):
        from repro.experiments.runner import main

        target = tmp_path / "telemetry"
        assert main(["run", "fig1a", "--telemetry-dir", str(target)]) == 0
        capsys.readouterr()
        assert main(["report", "--telemetry", str(target)]) == 0
        out = capsys.readouterr().out
        assert "experiments.run" in out
        assert "runner.experiment" in out

    def test_quiet_flag_suppresses_status_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "fig1a", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "finished in" not in out

    def test_default_output_unchanged_without_flags(self, capsys):
        from repro.experiments.runner import main

        assert main(["run", "fig1a"]) == 0
        out = capsys.readouterr().out
        assert "== fig1a" in out
        assert "finished in" in out

    def test_log_json_captures_records(self, tmp_path, capsys):
        from repro.experiments.runner import main

        log_path = tmp_path / "run.jsonl"
        assert main(["run", "fig1a", "--quiet", "--log-json", str(log_path)]) == 0
        capsys.readouterr()
        obs.LOGS.close()
        events = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert any(e["event"] == "experiment.finished" for e in events)
        finished = next(e for e in events if e["event"] == "experiment.finished")
        assert finished["experiment"] == "fig1a"
        assert "elapsed_s" in finished
