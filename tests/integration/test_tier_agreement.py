"""Cross-validation: the fast vectorized analyzer against the detailed
event-driven memory system.

The fast tier models an in-order per-bank stream; the detailed tier adds
FR-FCFS reordering within a finite queue.  On in-order-issued traces the
two must agree exactly on activation counts and per-row histograms; with
reordering the detailed tier can only *increase* row locality.
"""

import numpy as np
import pytest

from repro.dram.config import DRAMConfig
from repro.dram.fast_model import analyze_trace
from repro.dram.memory_system import MemorySystem, Request
from repro.dram.scheduler import FCFSScheduler
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping


@pytest.fixture(scope="module")
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=512)


def _random_lines(config, n, seed=0):
    rng = np.random.default_rng(seed)
    # Mix of sequential runs and random jumps to exercise hits and
    # conflicts.
    seq = np.arange(n // 2, dtype=np.uint64) % np.uint64(config.total_lines)
    rand = rng.integers(0, config.total_lines, n - n // 2, dtype=np.uint64)
    out = np.empty(n, dtype=np.uint64)
    out[0::2] = seq
    out[1::2] = rand
    return out


@pytest.mark.parametrize("mapping_cls", [LinearMapping, CoffeeLakeMapping, SkylakeMapping])
def test_fcfs_matches_fast_model_exactly(config, mapping_cls):
    mapping = mapping_cls(config)
    lines = _random_lines(config, 3000)

    mapped = mapping.translate_trace(lines)
    fast = analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=16
    )

    system = MemorySystem(config, mapping, scheduler=FCFSScheduler(), queue_depth=1)
    # Issue back-to-back: arrival order == service order.
    requests = [Request(line_addr=int(line), arrival=i * 1e-9) for i, line in enumerate(lines)]
    system.run_trace(requests)

    assert system.stats.accesses == fast.n_accesses
    assert system.stats.activations == fast.n_activations
    assert system.stats.hits == fast.n_hits
    detailed_hist = system.stats.acts_per_row
    fast_hist = dict(zip(fast.row_ids.tolist(), fast.acts_per_row.tolist()))
    assert detailed_hist == fast_hist


def test_frfcfs_only_improves_locality(config):
    mapping = CoffeeLakeMapping(config)
    lines = _random_lines(config, 3000, seed=1)
    mapped = mapping.translate_trace(lines)
    fast = analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=16
    )
    system = MemorySystem(config, mapping, queue_depth=16)
    requests = [Request(line_addr=int(line), arrival=i * 1e-9) for i, line in enumerate(lines)]
    system.run_trace(requests)
    # FR-FCFS groups row hits, so activations cannot exceed the
    # in-order count (and the totals still match).
    assert system.stats.accesses == fast.n_accesses
    assert system.stats.activations <= fast.n_activations
    assert system.stats.activations > 0


def test_open_page_agreement(config):
    mapping = LinearMapping(config)
    lines = _random_lines(config, 2000, seed=2)
    mapped = mapping.translate_trace(lines)
    fast = analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=None
    )
    from repro.dram.page_policy import OpenPagePolicy

    system = MemorySystem(
        config,
        mapping,
        scheduler=FCFSScheduler(),
        page_policy=OpenPagePolicy(),
        queue_depth=1,
    )
    requests = [Request(line_addr=int(line), arrival=i * 1e-9) for i, line in enumerate(lines)]
    system.run_trace(requests)
    assert system.stats.activations == fast.n_activations
