"""End-to-end shape tests: the paper's headline results must reproduce.

These run the real pipeline (calibrated workloads -> mapping -> fast
analyzer -> performance model) at reduced scale and assert the *shape*
of the paper's evaluation: who wins, by roughly what factor, and where
the orderings fall.
"""

import pytest

from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_s import RubixSMapping
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.workloads.spec import spec_names, spec_trace

SCALE = 0.08
T_RH = 128

HEAVY = ["blender", "lbm", "gcc", "cactuBSSN", "mcf", "roms"]


@pytest.fixture(scope="module")
def traces():
    return {name: spec_trace(name, scale=SCALE) for name in spec_names()}


@pytest.fixture(scope="module")
def sim(paper_simulator):
    return paper_simulator


@pytest.fixture(scope="module")
def mappings(paper_config):
    return {
        "cl": CoffeeLakeMapping(paper_config),
        "sky": SkylakeMapping(paper_config),
        "rubix_s4": RubixSMapping(paper_config, gang_size=4),
        "rubix_s1": RubixSMapping(paper_config, gang_size=1),
        "rubix_d4": RubixDMapping(paper_config, gang_size=4),
        "rubix_d1": RubixDMapping(paper_config, gang_size=1),
    }


def _mean(values):
    return sum(values) / len(values)


class TestHotRowReduction:
    def test_rubix_s_reduces_hot_rows_100x(self, sim, traces, mappings):
        cl_total = 0
        rubix_total = 0
        for trace in traces.values():
            cl_total += sim.window_stats(trace, mappings["cl"])[0].hot_rows(64)
            rubix_total += sim.window_stats(trace, mappings["rubix_s4"])[0].hot_rows(64)
        assert cl_total > 100 * max(1, rubix_total)

    def test_gs1_virtually_eliminates_hot_rows(self, sim, traces, mappings):
        total = sum(
            sim.window_stats(trace, mappings["rubix_s1"])[0].hot_rows(64)
            for trace in traces.values()
        )
        assert total <= 5

    def test_rubix_d_also_reduces(self, sim, traces, mappings):
        cl_total = 0
        rubix_total = 0
        for trace in traces.values():
            cl_total += sim.window_stats(trace, mappings["cl"])[0].hot_rows(64)
            rubix_total += sim.window_stats(trace, mappings["rubix_d4"])[0].hot_rows(64)
        assert cl_total > 50 * max(1, rubix_total)

    def test_skylake_similar_to_coffeelake(self, sim, traces, mappings):
        cl = sum(sim.window_stats(t, mappings["cl"])[0].hot_rows(64) for t in traces.values())
        sky = sum(
            sim.window_stats(t, mappings["sky"])[0].hot_rows(64) for t in traces.values()
        )
        assert sky == pytest.approx(cl, rel=0.3)


class TestSlowdownShape:
    def _avg_slowdown(self, sim, traces, mapping, scheme):
        return _mean(
            [
                sim.run(trace, mapping, scheme=scheme, t_rh=T_RH).slowdown_pct
                for trace in traces.values()
            ]
        )

    def test_baseline_ordering_aqua_srs_blockhammer(self, sim, traces, mappings):
        aqua = self._avg_slowdown(sim, traces, mappings["cl"], "aqua")
        srs = self._avg_slowdown(sim, traces, mappings["cl"], "srs")
        bh = self._avg_slowdown(sim, traces, mappings["cl"], "blockhammer")
        # Paper: 15% < 60% < 600%.
        assert aqua < srs < bh
        assert 5 < aqua < 35
        assert 25 < srs < 110
        assert bh > 200

    def test_rubix_makes_mitigations_cheap(self, sim, traces, mappings):
        for scheme, mapping_key in (
            ("aqua", "rubix_s4"),
            ("srs", "rubix_s4"),
            ("blockhammer", "rubix_s1"),
        ):
            slowdown = self._avg_slowdown(sim, traces, mappings[mapping_key], scheme)
            assert slowdown < 8, (scheme, slowdown)

    def test_rubix_d_is_close_to_rubix_s(self, sim, traces, mappings):
        s = self._avg_slowdown(sim, traces, mappings["rubix_s4"], "aqua")
        d = self._avg_slowdown(sim, traces, mappings["rubix_d4"], "aqua")
        assert d == pytest.approx(s, abs=4.0)
        assert d >= s - 0.5  # dynamic remapping costs a little extra

    def test_improvement_factors(self, sim, traces, mappings):
        # Headline: AQUA ~15x, SRS ~20x, Blockhammer ~200x improvement.
        for scheme, mapping_key, min_factor in (
            ("aqua", "rubix_s4", 5),
            ("srs", "rubix_s4", 10),
            ("blockhammer", "rubix_s1", 50),
        ):
            base = self._avg_slowdown(sim, traces, mappings["cl"], scheme)
            rubix = self._avg_slowdown(sim, traces, mappings[mapping_key], scheme)
            assert base > min_factor * max(rubix, 0.1), (scheme, base, rubix)


class TestThresholdSensitivity:
    def test_slowdown_grows_as_threshold_drops(self, sim, traces, mappings):
        heavy = {k: traces[k] for k in HEAVY}
        for scheme in ("aqua", "srs", "blockhammer"):
            slowdowns = [
                _mean(
                    [
                        sim.run(t, mappings["cl"], scheme=scheme, t_rh=t_rh).slowdown_pct
                        for t in heavy.values()
                    ]
                )
                for t_rh in (1024, 512, 256, 128)
            ]
            assert slowdowns == sorted(slowdowns), (scheme, slowdowns)

    def test_rubix_flat_across_thresholds(self, sim, traces, mappings):
        heavy = {k: traces[k] for k in HEAVY}
        for t_rh in (1024, 512, 256, 128):
            slowdown = _mean(
                [
                    sim.run(t, mappings["rubix_s4"], scheme="aqua", t_rh=t_rh).slowdown_pct
                    for t in heavy.values()
                ]
            )
            assert slowdown < 10


class TestRowBufferTradeoff:
    def test_hit_rate_ordering_gs(self, sim, traces, paper_config):
        gs_rates = {}
        for gs in (1, 2, 4):
            mapping = RubixSMapping(paper_config, gang_size=gs)
            gs_rates[gs] = _mean(
                [sim.window_stats(t, mapping)[0].hit_rate for t in traces.values()]
            )
        assert gs_rates[1] < gs_rates[2] < gs_rates[4]
        assert gs_rates[1] < 0.02  # GS1: essentially zero

    def test_baseline_hit_rate_band(self, sim, traces, mappings):
        cl = _mean([sim.window_stats(t, mappings["cl"])[0].hit_rate for t in traces.values()])
        assert 0.35 < cl < 0.70  # paper: 55%

    def test_isolated_mapping_overhead_small(self, sim, traces, mappings):
        # Table 4: 1-3% without mitigation.
        for key in ("rubix_s4", "rubix_s1", "rubix_d4"):
            slowdown = _mean(
                [sim.run(t, mappings[key], scheme="none").slowdown_pct for t in traces.values()]
            )
            assert -1 < slowdown < 6, (key, slowdown)
