"""Validate the mitigation cost-model constants at command level.

The analytic model charges each AQUA migration / SRS swap / Rubix-D
remap episode a closed-form duration; here the same operations are
replayed as real DRAM command sequences through the protocol engine and
the two must agree.  This closes the loop between the fast performance
model and the highest-fidelity tier.
"""

import pytest

from repro.dram.config import baseline_config
from repro.mitigations.costs import MitigationCostModel
from repro.mitigations.migration_traffic import (
    measure_row_migration,
    measure_row_swap,
    measure_rubix_d_swap,
)


@pytest.fixture(scope="module")
def config():
    return baseline_config()


@pytest.fixture(scope="module")
def costs(config):
    return MitigationCostModel(config, controller_overhead=1.0)


class TestAQUAMigration:
    def test_duration_matches_model(self, config, costs):
        measured = measure_row_migration(config)
        assert measured.duration_s == pytest.approx(costs.migration_s, rel=0.10)

    def test_traffic_volume(self, config):
        measured = measure_row_migration(config)
        assert measured.reads == config.lines_per_row
        assert measured.writes == config.lines_per_row
        assert measured.activations == 2  # source row + destination row

    def test_in_microsecond_regime(self, config):
        # Section 2.6: migrations tie up the bus for ~a microsecond+.
        measured = measure_row_migration(config)
        assert 0.5e-6 < measured.duration_s < 5e-6


class TestSRSSwap:
    def test_duration_matches_model(self, config, costs):
        measured = measure_row_swap(config)
        assert measured.duration_s == pytest.approx(costs.swap_s, rel=0.10)

    def test_swap_is_twice_migration(self, config):
        migration = measure_row_migration(config)
        swap = measure_row_swap(config)
        assert swap.duration_s == pytest.approx(2 * migration.duration_s, rel=0.15)

    def test_traffic_volume(self, config):
        measured = measure_row_swap(config)
        assert measured.reads == 2 * config.lines_per_row
        assert measured.writes == 2 * config.lines_per_row


class TestRubixDSwap:
    def test_duration_matches_model(self, config, costs):
        measured = measure_rubix_d_swap(config, gang_size=4)
        assert measured.duration_s == pytest.approx(
            costs.rubix_d_swap_s(4), rel=0.15
        )

    def test_command_budget_matches_paper(self, config):
        # Section 5.4: 3 ACTs + 8 CAS reads + 8 CAS writes at GS4.
        measured = measure_rubix_d_swap(config, gang_size=4)
        assert measured.reads == 8
        assert measured.writes == 8
        # Our replay reopens row A for the write-back (4 ACTs); the
        # paper's 3-ACT schedule holds row A open across phases --
        # either way the episode stays in the hundreds of nanoseconds.
        assert measured.activations in (3, 4)

    def test_two_orders_cheaper_than_row_swap(self, config):
        gang = measure_rubix_d_swap(config, gang_size=4)
        row = measure_row_swap(config)
        assert row.duration_s > 5 * gang.duration_s
