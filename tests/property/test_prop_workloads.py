"""Property-based tests for workload generation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import spec_names, spec_trace
from repro.workloads.trace import interleave

SMALL_WORKLOADS = ["xz", "namd", "imagick", "wrf", "povray", "parest"]


@given(
    name=st.sampled_from(SMALL_WORKLOADS),
    scale=st.floats(min_value=0.02, max_value=0.2),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_spec_traces_well_formed(name, scale, seed):
    trace = spec_trace(name, scale=scale, seed=seed)
    assert trace.lines.dtype == np.uint64
    assert len(trace) > 0
    assert int(trace.lines.max()) < (1 << 28)
    assert trace.instructions > 0
    # MPKI stays near the calibration target regardless of scale/seed.
    from repro.workloads.spec import spec_profile

    assert 0.5 * spec_profile(name).mpki < trace.mpki < 2.0 * spec_profile(name).mpki


@given(
    name=st.sampled_from(SMALL_WORKLOADS),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_scale_monotone_in_accesses(name, seed):
    small = spec_trace(name, scale=0.05, seed=seed)
    large = spec_trace(name, scale=0.15, seed=seed)
    assert len(large) > len(small)


@given(
    lengths=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_interleave_is_order_preserving_merge(lengths):
    # Streams carry (stream_id, position) encoded values.
    streams = [
        np.array([i * 1000 + j for j in range(n)], dtype=np.uint64)
        for i, n in enumerate(lengths)
    ]
    merged = interleave(streams)
    assert merged.size == sum(lengths)
    for i, n in enumerate(lengths):
        positions = [np.where(merged == i * 1000 + j)[0][0] for j in range(n)]
        assert positions == sorted(positions)


def test_all_eighteen_generate():
    """Every calibrated profile produces a valid trace at tiny scale."""
    for name in spec_names():
        trace = spec_trace(name, scale=0.02)
        assert len(trace) > 0, name
