"""Property-based tests for the power and mitigation-cost models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import DRAMConfig
from repro.dram.power import DDR4PowerModel
from repro.mitigations.costs import MitigationCostModel

MODEL = DDR4PowerModel()
WINDOW = 0.064

activity = st.integers(min_value=0, max_value=1_000_000)


@given(acts=activity, reads=activity, writes=activity)
@settings(max_examples=100, deadline=None)
def test_power_monotone_in_every_component(acts, reads, writes):
    base = MODEL.compute(activations=acts, reads=reads, writes=writes, window_s=WINDOW)
    more_acts = MODEL.compute(
        activations=acts + 1000, reads=reads, writes=writes, window_s=WINDOW
    )
    more_reads = MODEL.compute(
        activations=acts, reads=reads + 1000, writes=writes, window_s=WINDOW
    )
    assert more_acts.total_w > base.total_w
    assert more_reads.total_w > base.total_w


@given(acts=activity, reads=activity)
@settings(max_examples=60, deadline=None)
def test_power_components_nonnegative(acts, reads):
    power = MODEL.compute(activations=acts, reads=reads, writes=0, window_s=WINDOW)
    assert power.background_w >= 0
    assert power.activate_w >= 0
    assert power.io_w >= 0
    assert power.total_w > 0


@given(
    t_rh=st.integers(min_value=4, max_value=4096),
    overhead=st.floats(min_value=1.0, max_value=3.0),
)
@settings(max_examples=80, deadline=None)
def test_cost_model_invariants(t_rh, overhead):
    config = DRAMConfig()
    costs = MitigationCostModel(config, controller_overhead=overhead)
    # Swap moves twice the data of a migration.
    assert costs.swap_s > costs.migration_s > costs.victim_refresh_s
    # Blockhammer delay shrinks as the threshold rises.
    if t_rh >= 8:
        assert costs.blockhammer_delay_s(t_rh) >= costs.blockhammer_delay_s(t_rh * 2)
    # Everything scales with the controller-overhead factor.
    base = MitigationCostModel(config, controller_overhead=1.0)
    assert costs.migration_s >= base.migration_s


@given(gang_size=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=20, deadline=None)
def test_rubix_swap_cost_scales_with_gang(gang_size):
    costs = MitigationCostModel(DRAMConfig())
    if gang_size > 1:
        assert costs.rubix_d_swap_s(gang_size) > costs.rubix_d_swap_s(gang_size // 2)
    # A gang swap is far cheaper than a full row swap.
    assert costs.rubix_d_swap_s(gang_size) < costs.swap_s / 3
