"""Property-based tests: remap engine invariants and tracker guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remap_engine import XorRemapEngine
from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker


@given(
    nbits=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=2**63),
    steps=st.integers(min_value=0, max_value=2000),
)
@settings(max_examples=60, deadline=None)
def test_remap_engine_always_bijective(nbits, seed, steps):
    engine = XorRemapEngine(nbits=nbits, seed=seed)
    engine.remap_steps(steps)
    layout = engine.physical_layout()
    assert sorted(layout.tolist()) == list(range(engine.space))


@given(
    nbits=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**63),
)
@settings(max_examples=40, deadline=None)
def test_remap_full_epoch_equals_folded_key(nbits, seed):
    engine = XorRemapEngine(nbits=nbits, seed=seed)
    folded = engine.curr_key ^ engine.next_key
    engine.remap_steps(engine.space)
    assert engine.curr_key == folded
    for addr in range(engine.space):
        assert engine.translate(addr) == addr ^ folded


@given(
    nbits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**63),
    steps=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_remap_array_scalar_agree(nbits, seed, steps):
    engine = XorRemapEngine(nbits=nbits, seed=seed)
    engine.remap_steps(steps)
    addrs = np.arange(engine.space, dtype=np.uint64)
    array_out = engine.translate(addrs)
    for addr in range(engine.space):
        assert engine.translate(addr) == int(array_out[addr])


row_streams = st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=400)


@given(stream=row_streams, threshold=st.integers(min_value=1, max_value=20))
@settings(max_examples=80, deadline=None)
def test_per_row_tracker_counts_exactly(stream, threshold):
    """The ideal tracker triggers exactly floor(count/threshold) times."""
    tracker = PerRowTracker(threshold)
    triggers = {}
    for row in stream:
        if tracker.observe(row):
            triggers[row] = triggers.get(row, 0) + 1
    from collections import Counter

    counts = Counter(stream)
    for row, count in counts.items():
        assert triggers.get(row, 0) == count // threshold


@given(stream=row_streams, threshold=st.integers(min_value=2, max_value=20))
@settings(max_examples=80, deadline=None)
def test_misra_gries_never_triggers_early(stream, threshold):
    """Misra-Gries counts are lower bounds: a trigger implies the true
    count really reached the threshold."""
    tracker = MisraGriesTracker(threshold, num_counters=8)
    true_counts = {}
    since_trigger = {}
    for row in stream:
        true_counts[row] = true_counts.get(row, 0) + 1
        since_trigger[row] = since_trigger.get(row, 0) + 1
        if tracker.observe(row):
            # Activations since the last trigger must cover the threshold.
            assert since_trigger[row] >= threshold
            since_trigger[row] = 0


@given(stream=row_streams)
@settings(max_examples=60, deadline=None)
def test_misra_gries_with_large_table_is_exact(stream):
    threshold = 5
    exact = PerRowTracker(threshold)
    mg = MisraGriesTracker(threshold, num_counters=1000)
    for row in stream:
        assert mg.observe(row) == exact.observe(row)
