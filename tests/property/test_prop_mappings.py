"""Property-based tests for address mappings (bijectivity, roundtrips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping
from repro.mapping.stride import LargeStrideMapping

#: Small geometry (1 MB) allows exhaustive full-space checks.
SMALL = DRAMConfig(channels=1, ranks=1, banks=2, rows_per_bank=64, row_bytes=8192)
PAPER = DRAMConfig()

BASELINE_CLASSES = [
    LinearMapping,
    CoffeeLakeMapping,
    SkylakeMapping,
    MOPMapping,
    LargeStrideMapping,
]


@pytest.mark.parametrize("mapping_cls", BASELINE_CLASSES)
def test_baseline_mapping_exhaustively_bijective(mapping_cls):
    mapping = mapping_cls(SMALL)
    lines = np.arange(SMALL.total_lines, dtype=np.uint64)
    mapped = mapping.translate_trace(lines)
    keys = mapped.global_row * np.int64(SMALL.lines_per_row) + mapped.col.astype(np.int64)
    assert len(np.unique(keys)) == SMALL.total_lines


@pytest.mark.parametrize("gang_size", [1, 2, 4])
def test_rubix_s_exhaustively_bijective(gang_size):
    mapping = RubixSMapping(SMALL, gang_size=gang_size, seed=17)
    lines = np.arange(SMALL.total_lines, dtype=np.uint64)
    encrypted = np.array([mapping.encrypt_line(int(line)) for line in lines[:512]])
    assert len(np.unique(encrypted)) == 512


@given(
    line=st.integers(min_value=0, max_value=PAPER.total_lines - 1),
    seed=st.integers(min_value=0, max_value=2**32),
    gang_size=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_rubix_s_inverse_roundtrip(line, seed, gang_size):
    mapping = RubixSMapping(PAPER, gang_size=gang_size, seed=seed)
    assert mapping.inverse(mapping.translate(line)) == line


@given(
    line=st.integers(min_value=0, max_value=PAPER.total_lines - 1),
    mapping_cls=st.sampled_from(BASELINE_CLASSES),
)
@settings(max_examples=100, deadline=None)
def test_baseline_inverse_roundtrip(line, mapping_cls):
    mapping = mapping_cls(PAPER)
    coord = mapping.translate(line)
    PAPER.validate_coordinate(coord)
    assert mapping.inverse(coord) == line


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    gang_size=st.sampled_from([1, 2, 4]),
    steps=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=25, deadline=None)
def test_rubix_d_bijective_mid_sweep(seed, gang_size, steps):
    """Rubix-D stays a bijection at any point of the remap sweep."""
    mapping = RubixDMapping(SMALL, gang_size=gang_size, seed=seed)
    mapping.record_activations(np.full(mapping.vgroups, steps * 100.0))
    lines = np.arange(SMALL.total_lines, dtype=np.uint64)
    mapped = mapping.translate_trace(lines)
    keys = mapped.global_row * np.int64(SMALL.lines_per_row) + mapped.col.astype(np.int64)
    assert len(np.unique(keys)) == SMALL.total_lines


@given(
    line=st.integers(min_value=0, max_value=PAPER.total_lines - 1),
    gang_size=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_rubix_preserves_gang_colocation(line, gang_size):
    """Any line's gang-mates land in the same physical row."""
    mapping = RubixSMapping(PAPER, gang_size=gang_size, seed=5)
    gang_base = (line // gang_size) * gang_size
    rows = {
        PAPER.global_row(mapping.translate(gang_base + offset))
        for offset in range(gang_size)
    }
    assert len(rows) == 1
