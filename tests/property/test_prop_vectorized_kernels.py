"""Equivalence properties for the vectorized hot-path kernels.

Each optimized kernel keeps its pre-optimization reference in-tree;
these tests pin the contract the optimization relies on: *bit-identical*
results, not just statistically similar ones.

* ``analyze_trace(method="count")`` vs ``method="sort")`` -- every
  :class:`TraceStats` field including detail-array order,
* ``RubixDMapping.translate_trace`` (gather) vs per-element
  ``translate`` and the masked ``_translate_trace_loop``, including
  mid-sweep engine states (nonzero Ptr),
* Rubix-S batch translation vs per-element translation under the
  one-shot-validation fast path,
* ``XorRemapEngine.remap_steps`` (closed form) vs the stepwise walk,
  across epoch wrap-arounds,
* the **three-way backend matrix** -- every kernel's ``reference`` /
  ``numpy`` / ``numba`` tiers (see :mod:`repro.perf.backends`) produce
  identical results.  Without numba installed the jitted functions run
  as plain Python through the njit shim, so the numba tier's *logic* is
  pinned on every machine; tests marked ``numba`` additionally exercise
  the compiled path and skip where the package is absent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.remap_engine import XorRemapEngine
from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.dram.fast_model import ChunkedAnalyzer, _merge_chunk_numpy, analyze_trace
from repro.perf.backends import numba_available
from repro.perf.numba_kernels import (
    analyze_trace_numba,
    merge_chunk_numba,
    translate_trace_numba,
)

SMALL = DRAMConfig(banks=4, rows_per_bank=256, row_bytes=1024)

#: Backends exercised through the *public* dispatch path.  The numba
#: tier joins only when truly importable -- passing ``backend="numba"``
#: without numba resolves to numpy (by design), which would silently
#: test the same tier twice.
PUBLIC_BACKENDS = ["reference", "numpy"] + (["numba"] if numba_available() else [])

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=63)),
    min_size=1,
    max_size=400,
)


def _assert_stats_identical(a, b):
    assert a.n_accesses == b.n_accesses
    assert a.n_activations == b.n_activations
    assert a.n_hits == b.n_hits
    assert a.unique_rows_touched == b.unique_rows_touched
    assert np.array_equal(a.row_ids, b.row_ids)
    assert a.row_ids.dtype == b.row_ids.dtype
    assert np.array_equal(a.acts_per_row, b.acts_per_row)
    assert a.acts_per_row.dtype == b.acts_per_row.dtype
    assert (a.act_rows is None) == (b.act_rows is None)
    if a.act_rows is not None:
        assert np.array_equal(a.act_rows, b.act_rows)
    assert (a.act_cols is None) == (b.act_cols is None)
    if a.act_cols is not None:
        assert np.array_equal(a.act_cols, b.act_cols)


@given(
    trace=traces,
    max_hits=st.sampled_from([None, 1, 3, 16]),
    keep_detail=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_count_kernel_matches_sort_kernel(trace, max_hits, keep_detail):
    """The counting kernels reproduce the argsort path bit-for-bit.

    Detail arrays included: activation (row, col) pairs must come out in
    the same order, since Table-3-style analyses consume them
    positionally.
    """
    banks = np.array([b for b, _ in trace], dtype=np.uint64)
    rows = np.array([r for _, r in trace], dtype=np.uint64)
    cols = np.arange(banks.size, dtype=np.uint64) % 128
    kwargs = dict(
        rows_per_bank=1024, max_hits=max_hits, col=cols, keep_detail=keep_detail
    )
    _assert_stats_identical(
        analyze_trace(banks, rows, method="sort", **kwargs),
        analyze_trace(banks, rows, method="count", **kwargs),
    )


@given(rows=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_count_kernel_beyond_histogram_domain(rows):
    """Row ids past the dense-histogram cutoff use the np.unique fallback
    and still match the reference."""
    rng = np.random.default_rng(rows)
    banks = rng.integers(0, 2, size=200, dtype=np.uint64)
    row = rng.integers(0, 1 << 24, size=200, dtype=np.uint64)
    a = analyze_trace(banks, row, rows_per_bank=1 << 24, max_hits=16, method="sort")
    b = analyze_trace(banks, row, rows_per_bank=1 << 24, max_hits=16, method="count")
    _assert_stats_identical(a, b)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rows_per_bank=st.sampled_from([64, 1 << 24]),
    n_chunks=st.integers(min_value=1, max_value=4),
    keep_detail=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_chunked_analyzer_count_matches_sort(seed, rows_per_bank, n_chunks, keep_detail):
    """Chunk-merged windows agree between the dense accumulators of the
    count method and the sort method's concatenate-and-unique merge
    (the 2^24 rows-per-bank case forces the non-dense fallback)."""
    rng = np.random.default_rng(seed)
    count = ChunkedAnalyzer(
        rows_per_bank=rows_per_bank, max_hits=16, keep_detail=keep_detail, method="count"
    )
    sort = ChunkedAnalyzer(
        rows_per_bank=rows_per_bank, max_hits=16, keep_detail=keep_detail, method="sort"
    )
    for _ in range(n_chunks):
        n = int(rng.integers(1, 300))
        banks = rng.integers(0, 4, size=n, dtype=np.uint64)
        rows = rng.integers(0, rows_per_bank, size=n, dtype=np.uint64)
        cols = rng.integers(0, 128, size=n, dtype=np.uint64)
        _assert_stats_identical(
            sort.feed(banks, rows, cols), count.feed(banks, rows, cols)
        )
    _assert_stats_identical(sort.result(), count.result())


def test_chunked_analyzer_dense_to_fallback_midstream():
    """A chunk whose row domain outgrows the dense-histogram budget
    mid-window folds the accumulated state into the fallback merge
    without losing any earlier chunk's contribution."""
    rng = np.random.default_rng(3)
    count = ChunkedAnalyzer(rows_per_bank=64, max_hits=16, method="count")
    sort = ChunkedAnalyzer(rows_per_bank=64, max_hits=16, method="sort")
    chunks = [
        (rng.integers(0, 4, 200, dtype=np.uint64), rng.integers(0, 64, 200, dtype=np.uint64)),
        # Out-of-spec row indices blow up the observed domain (the
        # analyzer derives it from the data, not the config).
        (rng.integers(0, 4, 200, dtype=np.uint64), rng.integers(0, 1 << 30, 200, dtype=np.uint64)),
        (rng.integers(0, 4, 200, dtype=np.uint64), rng.integers(0, 64, 200, dtype=np.uint64)),
    ]
    for banks, rows in chunks:
        count.feed(banks, rows)
        sort.feed(banks, rows)
    _assert_stats_identical(sort.result(), count.result())


@pytest.mark.parametrize("gang_size", [1, 2, 4])
@pytest.mark.parametrize("segments", [1, 2])
def test_rubix_d_gather_matches_scalar_and_loop(gang_size, segments):
    """Gather-based translate_trace == per-element translate == masked loop,
    including mid-sweep (nonzero Ptr, partially advanced engines)."""
    mapping = RubixDMapping(
        SMALL, gang_size=gang_size, seed=0xFEED, segments=segments, remap_rate=0.01
    )
    rng = np.random.default_rng(7)
    lines = rng.integers(0, SMALL.total_lines, size=4096, dtype=np.uint64)

    for round_no in range(3):
        mapped = mapping.translate_trace(lines)
        looped = mapping._translate_trace_loop(lines)
        assert np.array_equal(np.asarray(mapped.flat_bank), np.asarray(looped.flat_bank))
        assert np.array_equal(np.asarray(mapped.row), np.asarray(looped.row))
        assert np.array_equal(np.asarray(mapped.col), np.asarray(looped.col))
        for i in [0, 1, 17, 4095]:
            coord = mapping.translate(int(lines[i]))
            assert int(mapped.row[i]) == coord.row
            assert int(mapped.col[i]) == coord.col
            flat = (coord.channel * SMALL.ranks + coord.rank) * SMALL.banks + coord.bank
            assert int(mapped.flat_bank[i]) == flat
        # Advance the sweeps unevenly so later rounds hit nonzero,
        # engine-specific Ptr values (and eventually epoch rotations).
        counts = np.arange(mapping.vgroups, dtype=np.float64) * 400.0 * (round_no + 1)
        mapping.record_activations(counts)
    assert any(e.ptr > 0 or e.epochs_completed > 0 for e in mapping.engines)


def test_rubix_s_batch_matches_scalar():
    """Rubix-S one-shot-validated batch path == per-element translation."""
    mapping = RubixSMapping(SMALL, gang_size=4, seed=0xABC)
    rng = np.random.default_rng(11)
    lines = rng.integers(0, SMALL.total_lines, size=2048, dtype=np.uint64)
    mapped = mapping.translate_trace(lines)
    for i in [0, 5, 512, 2047]:
        coord = mapping.translate(int(lines[i]))
        assert int(mapped.row[i]) == coord.row
        assert int(mapped.col[i]) == coord.col


def test_out_of_domain_still_rejected_by_default():
    """validate=True (the default) keeps rejecting bad addresses."""
    for mapping in (
        RubixDMapping(SMALL, gang_size=4, seed=1),
        RubixSMapping(SMALL, gang_size=4, seed=1),
    ):
        with pytest.raises(ValueError):
            mapping.translate_trace(np.array([SMALL.total_lines], dtype=np.uint64))


@given(
    nbits=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    counts=st.lists(st.integers(min_value=0, max_value=600), min_size=1, max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_closed_form_remap_matches_stepwise_walk(nbits, seed, counts):
    """remap_steps (closed form) == per-episode walk: same swap totals,
    counters, pointer, and key schedule, across arbitrary call splits
    and epoch wrap-arounds."""
    closed = XorRemapEngine(nbits=nbits, seed=seed)
    stepwise = XorRemapEngine(nbits=nbits, seed=seed)
    for count in counts:
        assert closed.remap_steps(count) == stepwise._remap_steps_loop(count)
        assert closed.swaps_performed == stepwise.swaps_performed
        assert closed.swaps_skipped == stepwise.swaps_skipped
        assert closed.ptr == stepwise.ptr
        assert closed.epochs_completed == stepwise.epochs_completed
        assert closed.curr_key == stepwise.curr_key
        assert closed.next_key == stepwise.next_key
        # Identical register state implies identical translation.
        probe = np.arange(closed.space, dtype=np.uint64)
        assert np.array_equal(closed.translate(probe), stepwise.translate(probe))


def test_dynamic_window_pipeline_bit_identical():
    """The full dynamic window -- chunked translate + analyze + remap
    advancement -- produces identical TraceStats and swap totals whether
    it runs on the optimized kernels or the reference ones.  This is the
    invariant that keeps simulator RunResults (and the content-keyed
    stats cache) unchanged by the optimization."""
    from repro.perf.hotpath_bench import (
        _use_loop_remap,
        assert_stats_equal,
        run_window,
        synth_lines,
    )

    lines = synth_lines(20_000, SMALL, seed=0x5EED)
    legacy_map = RubixDMapping(SMALL, gang_size=4, seed=0x5EED, remap_rate=0.01)
    _use_loop_remap(legacy_map)
    new_map = RubixDMapping(SMALL, gang_size=4, seed=0x5EED, remap_rate=0.01)
    legacy_stats, legacy_swaps = run_window(
        legacy_map, lines, chunk_lines=4096, optimized=False
    )
    new_stats, new_swaps = run_window(new_map, lines, chunk_lines=4096, optimized=True)
    assert legacy_swaps == new_swaps and new_swaps > 0
    assert_stats_equal(legacy_stats, new_stats)


# ---------------------------------------------------------------------------
# Three-way backend matrix: reference / numpy / numba
# ---------------------------------------------------------------------------
@given(
    trace=traces,
    max_hits=st.sampled_from([None, 1, 3, 16]),
    keep_detail=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_analyze_backend_matrix(trace, max_hits, keep_detail):
    """Every analysis tier returns bit-identical TraceStats.

    The numba tier is exercised through its wrapper directly (plain
    Python under the njit shim when numba is absent), so the matrix is
    three-way on every machine.
    """
    banks = np.array([b for b, _ in trace], dtype=np.uint64)
    rows = np.array([r for _, r in trace], dtype=np.uint64)
    cols = np.arange(banks.size, dtype=np.uint64) % 128
    kwargs = dict(
        rows_per_bank=1024, max_hits=max_hits, col=cols, keep_detail=keep_detail
    )
    ref = analyze_trace(banks, rows, backend="reference", **kwargs)
    _assert_stats_identical(ref, analyze_trace(banks, rows, backend="numpy", **kwargs))
    via_numba = analyze_trace_numba(banks, rows, **kwargs)
    assert via_numba is not None
    _assert_stats_identical(ref, via_numba)


def test_analyze_numba_defers_oversized_domains():
    """The numba wrapper declines pathological dense domains (returns
    None); the public dispatcher then lands on the numpy sparse path and
    still matches the reference."""
    rng = np.random.default_rng(5)
    banks = rng.integers(0, 2, size=100, dtype=np.uint64)
    rows = rng.integers(0, 1 << 30, size=100, dtype=np.uint64)
    kwargs = dict(rows_per_bank=1 << 30, max_hits=16)
    assert analyze_trace_numba(banks, rows, **kwargs) is None
    _assert_stats_identical(
        analyze_trace(banks, rows, backend="reference", **kwargs),
        analyze_trace(banks, rows, backend="numpy", **kwargs),
    )


@pytest.mark.parametrize("segments", [1, 2])
def test_translate_backend_matrix(segments):
    """Every translation tier agrees element-for-element *and* in output
    dtype (the uint32 narrowing), including mid-sweep engine states."""
    mapping = RubixDMapping(
        SMALL, gang_size=4, seed=0xFACE, segments=segments, remap_rate=0.01
    )
    rng = np.random.default_rng(13)
    lines = rng.integers(0, SMALL.total_lines, size=2048, dtype=np.uint64)
    for round_no in range(3):
        results = [
            mapping.translate_trace(lines, backend=b) for b in PUBLIC_BACKENDS
        ] + [translate_trace_numba(mapping, lines)]
        ref = results[0]
        for other in results[1:]:
            for attr in ("flat_bank", "row", "col"):
                a, b = np.asarray(getattr(ref, attr)), np.asarray(getattr(other, attr))
                assert np.array_equal(a, b)
                assert a.dtype == b.dtype
        counts = np.arange(mapping.vgroups, dtype=np.float64) * 300.0 * (round_no + 1)
        mapping.record_activations(counts)
    assert any(e.ptr > 0 or e.epochs_completed > 0 for e in mapping.engines)


@given(
    nbits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    counts=st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=4),
)
@settings(max_examples=40, deadline=None)
def test_remap_backend_matrix(nbits, seed, counts):
    """remap_steps leaves identical engine state under every backend."""
    from repro.perf.numba_kernels import remap_steps_numba

    engines = {b: XorRemapEngine(nbits=nbits, seed=seed) for b in PUBLIC_BACKENDS}
    shim = XorRemapEngine(nbits=nbits, seed=seed)
    for count in counts:
        swaps = {b: e.remap_steps(count, backend=b) for b, e in engines.items()}
        swaps["numba-shim"] = remap_steps_numba(shim, count)
        assert len(set(swaps.values())) == 1, swaps
        states = {
            b: (e.ptr, e.curr_key, e.next_key, e.swaps_performed, e.epochs_completed)
            for b, e in {**engines, "numba-shim": shim}.items()
        }
        assert len(set(states.values())) == 1, states


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_chunks=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_chunk_merge_backend_matrix(seed, n_chunks):
    """The numpy and numba dense accumulators scatter identically."""
    rng = np.random.default_rng(seed)
    domain = 256
    hist_np = np.zeros(domain, np.int64)
    seen_np = np.zeros(domain, np.bool_)
    hist_nb = np.zeros(domain, np.int64)
    seen_nb = np.zeros(domain, np.bool_)
    for _ in range(n_chunks):
        n = int(rng.integers(1, 100))
        global_row = rng.integers(0, domain, size=n)
        row_ids = np.unique(rng.integers(0, domain, size=n))
        acts = rng.integers(1, 5, size=row_ids.size)
        _merge_chunk_numpy(hist_np, seen_np, global_row, row_ids, acts)
        merge_chunk_numba(hist_nb, seen_nb, global_row, row_ids, acts)
    assert np.array_equal(hist_np, hist_nb)
    assert np.array_equal(seen_np, seen_nb)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_chunks=st.integers(min_value=1, max_value=3),
    keep_detail=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_chunked_analyzer_backend_matrix(seed, n_chunks, keep_detail):
    """Whole chunked windows agree across the public backend tiers."""
    rng = np.random.default_rng(seed)
    analyzers = {
        b: ChunkedAnalyzer(
            rows_per_bank=64, max_hits=16, keep_detail=keep_detail, backend=b
        )
        for b in PUBLIC_BACKENDS
    }
    for _ in range(n_chunks):
        n = int(rng.integers(1, 200))
        banks = rng.integers(0, 4, size=n, dtype=np.uint64)
        rows = rng.integers(0, 64, size=n, dtype=np.uint64)
        cols = rng.integers(0, 128, size=n, dtype=np.uint64)
        fed = [a.feed(banks, rows, cols) for a in analyzers.values()]
        for other in fed[1:]:
            _assert_stats_identical(fed[0], other)
    finals = [a.result() for a in analyzers.values()]
    for other in finals[1:]:
        _assert_stats_identical(finals[0], other)


@pytest.mark.numba
@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_compiled_numba_window_matches_reference():
    """With numba truly installed, a full dynamic window dispatched via
    ``backend="numba"`` (compiled kernels) matches the reference tier."""
    from repro.perf.hotpath_bench import assert_stats_equal, run_window, synth_lines
    from repro.perf.numba_kernels import warmup

    assert warmup(SMALL)
    lines = synth_lines(30_000, SMALL, seed=0xD00D)
    ref_map = RubixDMapping(SMALL, gang_size=4, seed=0xD00D, remap_rate=0.01)
    nb_map = RubixDMapping(SMALL, gang_size=4, seed=0xD00D, remap_rate=0.01)
    ref_stats, ref_swaps = run_window(
        ref_map, lines, chunk_lines=4096, backend="reference"
    )
    nb_stats, nb_swaps = run_window(nb_map, lines, chunk_lines=4096, backend="numba")
    assert ref_swaps == nb_swaps
    assert_stats_equal(ref_stats, nb_stats)


def test_remap_steps_epoch_wrap_exact():
    """A single call spanning multiple epochs lands exactly where the
    stepwise walk does (counters conserved: performed + skipped = count)."""
    closed = XorRemapEngine(nbits=6, seed=99)
    stepwise = XorRemapEngine(nbits=6, seed=99)
    count = 3 * closed.space + 17
    assert closed.remap_steps(count) == stepwise._remap_steps_loop(count)
    assert closed.epochs_completed == stepwise.epochs_completed == 3
    assert closed.ptr == stepwise.ptr == 17
    assert closed.swaps_performed + closed.swaps_skipped == count
