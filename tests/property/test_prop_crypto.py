"""Property-based tests for the cipher substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feistel import FeistelNetwork
from repro.crypto.kcipher import KCipher

widths = st.integers(min_value=1, max_value=30)
keys = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(width=widths, key=keys, data=st.data())
@settings(max_examples=100, deadline=None)
def test_feistel_roundtrip(width, key, data):
    """decrypt(encrypt(x)) == x for any width, key, and value."""
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    net = FeistelNetwork(width=width, key=key)
    assert net.decrypt(net.encrypt(value)) == value


@given(width=st.integers(min_value=1, max_value=10), key=keys)
@settings(max_examples=40, deadline=None)
def test_feistel_is_permutation(width, key):
    """Exhaustive bijectivity for any key at small widths."""
    net = FeistelNetwork(width=width, key=key)
    domain = np.arange(1 << width, dtype=np.uint64)
    images = np.asarray(net.encrypt(domain))
    assert np.array_equal(np.sort(images), domain)


@given(width=widths, key=keys, data=st.data())
@settings(max_examples=50, deadline=None)
def test_feistel_array_scalar_agree(width, key, data):
    """The vectorized path computes the same permutation as the scalar."""
    values = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=1,
            max_size=20,
        )
    )
    net = FeistelNetwork(width=width, key=key)
    array_out = np.asarray(net.encrypt(np.asarray(values, dtype=np.uint64)))
    for value, out in zip(values, array_out):
        assert net.encrypt(value) == int(out)


@given(
    width=st.integers(min_value=4, max_value=28),
    key=st.integers(min_value=0, max_value=(1 << 96) - 1),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_kcipher_roundtrip(width, key, data):
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    cipher = KCipher(width=width, key=key)
    assert cipher.decrypt(cipher.encrypt(value)) == value


@given(key1=keys, key2=keys)
@settings(max_examples=30, deadline=None)
def test_different_keys_usually_disagree(key1, key2):
    if key1 == key2:
        return
    a = FeistelNetwork(width=16, key=key1)
    b = FeistelNetwork(width=16, key=key2)
    domain = np.arange(1 << 12, dtype=np.uint64)
    # Two random permutations of 4096 elements agree on ~1 point.
    agreements = int(np.count_nonzero(np.asarray(a.encrypt(domain)) == np.asarray(b.encrypt(domain))))
    assert agreements < 64
