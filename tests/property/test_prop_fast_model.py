"""Property-based tests for the fast trace analyzer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.fast_model import analyze_trace

traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=15)),
    min_size=1,
    max_size=300,
)


def _reference(accesses, max_hits):
    """Oracle: per-bank sequential row-buffer simulation in plain Python."""
    open_row = {}
    hits_since = {}
    activations = 0
    hits = 0
    acts_per_row = {}
    for bank, row in accesses:
        if open_row.get(bank) == row and (max_hits is None or hits_since[bank] < max_hits):
            hits += 1
            hits_since[bank] += 1
        else:
            activations += 1
            open_row[bank] = row
            hits_since[bank] = 1
            key = bank * 1024 + row
            acts_per_row[key] = acts_per_row.get(key, 0) + 1
    return activations, hits, acts_per_row


@given(trace=traces, max_hits=st.sampled_from([None, 1, 2, 16]))
@settings(max_examples=150, deadline=None)
def test_matches_reference_simulation(trace, max_hits):
    banks = np.array([b for b, _ in trace], dtype=np.uint64)
    rows = np.array([r for _, r in trace], dtype=np.uint64)
    stats = analyze_trace(banks, rows, rows_per_bank=1024, max_hits=max_hits)
    ref_acts, ref_hits, ref_hist = _reference(trace, max_hits)
    assert stats.n_activations == ref_acts
    assert stats.n_hits == ref_hits
    assert dict(zip(stats.row_ids.tolist(), stats.acts_per_row.tolist())) == ref_hist


@given(trace=traces)
@settings(max_examples=80, deadline=None)
def test_accounting_invariants(trace):
    banks = np.array([b for b, _ in trace], dtype=np.uint64)
    rows = np.array([r for _, r in trace], dtype=np.uint64)
    stats = analyze_trace(banks, rows, rows_per_bank=1024)
    # Conservation: every access is a hit or an activation.
    assert stats.n_hits + stats.n_activations == stats.n_accesses
    # The histogram sums to the activation count.
    assert int(stats.acts_per_row.sum()) == stats.n_activations
    # Hot rows are monotone in the threshold.
    assert stats.hot_rows(1) >= stats.hot_rows(2) >= stats.hot_rows(100)
    # Every touched row with an activation appears in the histogram.
    assert stats.hot_rows(1) == len(stats.row_ids)
    assert stats.unique_rows_touched >= len(stats.row_ids)


@given(trace=traces, threshold=st.integers(min_value=1, max_value=8))
@settings(max_examples=80, deadline=None)
def test_crossings_and_excess_consistent(trace, threshold):
    banks = np.array([b for b, _ in trace], dtype=np.uint64)
    rows = np.array([r for _, r in trace], dtype=np.uint64)
    stats = analyze_trace(banks, rows, rows_per_bank=1024)
    crossings = stats.threshold_crossings(threshold)
    excess = stats.excess_activations(threshold)
    # floor(A/t) <= A/t and excess = sum(max(0, A-t)).
    manual_crossings = sum(int(a) // threshold for a in stats.acts_per_row)
    manual_excess = sum(max(0, int(a) - threshold) for a in stats.acts_per_row)
    assert crossings == manual_crossings
    assert excess == manual_excess
