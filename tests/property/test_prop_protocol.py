"""Property-based tests: the protocol engine never violates DDR timing.

Random traces are replayed with command collection on; the collected
command stream must satisfy every pairwise constraint (tRC/tRRD/tFAW per
rank, tRP after PRE, tRCD after ACT, burst spacing on the bus).
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.commands import CommandType
from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.protocol import ProtocolEngine

CONFIG = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=64)

accesses_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # bank
        st.integers(min_value=0, max_value=15),  # row
        st.integers(min_value=0, max_value=7),   # col
        st.booleans(),                           # write?
    ),
    min_size=1,
    max_size=60,
)

EPS = 1e-12


def _replay(accesses, spacing=5e-9):
    engine = ProtocolEngine(CONFIG, collect_commands=True)
    for index, (bank, row, col, is_write) in enumerate(accesses):
        engine.access(
            Coordinate(0, 0, bank, row, col), index * spacing, is_write=is_write
        )
    return engine


@given(accesses=accesses_strategy)
@settings(max_examples=120, deadline=None)
def test_per_bank_constraints(accesses):
    engine = _replay(accesses)
    t = engine.timing
    last_act = {}
    last_pre = {}
    for command in engine.commands:
        key = (command.bank,)
        if command.kind is CommandType.ACT:
            if key in last_act:
                assert command.issue_time >= last_act[key] + t.t_rc - EPS
            if key in last_pre:
                assert command.issue_time >= last_pre[key] + t.t_rp - EPS
            last_act[key] = command.issue_time
        elif command.kind is CommandType.PRE:
            if key in last_act:
                assert command.issue_time >= last_act[key] + t.t_ras - EPS
            last_pre[key] = command.issue_time
        elif command.kind in (CommandType.RD, CommandType.WR):
            if key in last_act and engine_open_since(engine, command, last_act[key]):
                assert command.issue_time >= last_act[key] + 0 - EPS


def engine_open_since(engine, command, act_time):
    # RD/WR after the bank's latest ACT must respect tRCD when it was
    # the activating access; hits can issue earlier than act+tRCD only
    # if they belong to an older activation -- with a single collected
    # stream we simply check the weaker ordering property.
    return command.issue_time >= act_time


@given(accesses=accesses_strategy)
@settings(max_examples=100, deadline=None)
def test_rank_level_constraints(accesses):
    engine = _replay(accesses)
    t = engine.timing
    act_times = [
        c.issue_time for c in engine.commands if c.kind is CommandType.ACT
    ]
    # tRRD between any two consecutive ACTs in the rank.
    for earlier, later in zip(act_times, act_times[1:]):
        assert later >= earlier + t.t_rrd - EPS
    # tFAW: any 5 consecutive ACTs span at least tFAW.
    window = deque(maxlen=4)
    for act in act_times:
        if len(window) == 4:
            assert act >= window[0] + t.t_faw - EPS
        window.append(act)


@given(accesses=accesses_strategy)
@settings(max_examples=100, deadline=None)
def test_bus_never_double_booked(accesses):
    engine = _replay(accesses)
    t = engine.timing
    column_times = sorted(
        c.issue_time
        for c in engine.commands
        if c.kind in (CommandType.RD, CommandType.WR)
    )
    for earlier, later in zip(column_times, column_times[1:]):
        assert later >= earlier + t.t_burst - EPS


@given(accesses=accesses_strategy)
@settings(max_examples=100, deadline=None)
def test_activation_accounting(accesses):
    engine = _replay(accesses)
    acts = sum(1 for c in engine.commands if c.kind is CommandType.ACT)
    assert acts == engine.activations
    assert acts <= len(accesses)
    reads = sum(1 for c in engine.commands if c.kind is CommandType.RD)
    writes = sum(1 for c in engine.commands if c.kind is CommandType.WR)
    assert reads + writes == len(accesses)
