"""Shared fixtures for the test suite.

Most tests use a *small* DRAM geometry (64 MB) so exhaustive checks and
detailed-model replays stay fast; tests that need the paper's 16 GB
baseline use the ``paper_config`` fixture.
"""

from __future__ import annotations

import importlib.util
import signal
import threading

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, baseline_config
from repro.perf.simulator import Simulator

_HAVE_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    # pyproject.toml sets `timeout`; when pytest-timeout is absent we
    # register the ini key ourselves and enforce it with SIGALRM below,
    # so a hung simulation still fails instead of stalling the build.
    if not _HAVE_TIMEOUT_PLUGIN:
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback for pytest-timeout)",
            default="0",
        )


if not _HAVE_TIMEOUT_PLUGIN:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        seconds = float(item.config.getini("timeout") or 0)
        usable = (
            seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def _on_alarm(signum, frame):
            raise TimeoutError(f"test exceeded the {seconds:.0f}s timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def paper_config() -> DRAMConfig:
    """Table-1 baseline: 16 GB, 16 banks, 128K rows/bank, 8 KB rows."""
    return baseline_config()


@pytest.fixture(scope="session")
def small_config() -> DRAMConfig:
    """A 64 MB system: 4 banks x 2048 rows x 8 KB (18-bit line space)."""
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=2048)


@pytest.fixture(scope="session")
def tiny_config() -> DRAMConfig:
    """A 1 MB system small enough for exhaustive bijectivity sweeps."""
    return DRAMConfig(channels=1, ranks=1, banks=2, rows_per_bank=64, row_bytes=8192)


@pytest.fixture(scope="session")
def paper_simulator(paper_config) -> Simulator:
    """A shared simulator on the paper geometry (stats cache reused)."""
    return Simulator(paper_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
