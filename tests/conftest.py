"""Shared fixtures for the test suite.

Most tests use a *small* DRAM geometry (64 MB) so exhaustive checks and
detailed-model replays stay fast; tests that need the paper's 16 GB
baseline use the ``paper_config`` fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, baseline_config
from repro.perf.simulator import Simulator


@pytest.fixture(scope="session")
def paper_config() -> DRAMConfig:
    """Table-1 baseline: 16 GB, 16 banks, 128K rows/bank, 8 KB rows."""
    return baseline_config()


@pytest.fixture(scope="session")
def small_config() -> DRAMConfig:
    """A 64 MB system: 4 banks x 2048 rows x 8 KB (18-bit line space)."""
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=2048)


@pytest.fixture(scope="session")
def tiny_config() -> DRAMConfig:
    """A 1 MB system small enough for exhaustive bijectivity sweeps."""
    return DRAMConfig(channels=1, ranks=1, banks=2, rows_per_bank=64, row_bytes=8192)


@pytest.fixture(scope="session")
def paper_simulator(paper_config) -> Simulator:
    """A shared simulator on the paper geometry (stats cache reused)."""
    return Simulator(paper_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
