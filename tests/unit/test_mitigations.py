"""Unit tests for AQUA, SRS, Blockhammer, TRR, and the cost model."""

import pytest

from repro.dram.config import Coordinate, DRAMConfig
from repro.mitigations.aqua import AQUA
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.costs import MitigationCostModel, tracker_threshold
from repro.mitigations.srs import SRS
from repro.mitigations.trr import TRR


@pytest.fixture()
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)


def _coord(config, row, bank=0):
    return Coordinate(channel=0, rank=0, bank=bank, row=row, col=0)


def _hammer(mitigation, config, row, times, start=0.0):
    """Feed `times` activations of one row; returns total stall."""
    stall = 0.0
    for i in range(times):
        action = mitigation.on_activation(_coord(config, row), start + i * 50e-9)
        stall += action.stall_s
    return stall


class TestCostModel:
    def test_migration_is_microseconds(self, config):
        costs = MitigationCostModel(config, controller_overhead=1.0)
        assert 0.5e-6 < costs.migration_s < 5e-6

    def test_swap_costs_about_twice_migration(self, config):
        costs = MitigationCostModel(config)
        assert 1.5 < costs.swap_s / costs.migration_s < 2.5

    def test_victim_refresh_under_100ns(self, config):
        assert MitigationCostModel(config).victim_refresh_s < 100e-9

    def test_blockhammer_delay_grows_at_low_threshold(self, config):
        costs = MitigationCostModel(config)
        assert costs.blockhammer_delay_s(128) > costs.blockhammer_delay_s(1024)
        # T_RH=128: 64ms / 64 remaining budget = 1 ms.
        assert costs.blockhammer_delay_s(128) == pytest.approx(1e-3)

    def test_thresholds(self):
        assert tracker_threshold("aqua", 128) == 64
        assert tracker_threshold("srs", 128) == 42
        assert tracker_threshold("blockhammer", 128) == 64
        with pytest.raises(ValueError):
            tracker_threshold("unknown", 128)
        with pytest.raises(ValueError):
            tracker_threshold("srs", 2)


class TestAQUA:
    def test_migrates_at_half_threshold(self, config):
        aqua = AQUA(config, t_rh=128)
        stall = _hammer(aqua, config, row=5, times=64)
        assert aqua.migrations == 1
        assert stall > 0

    def test_redirect_after_migration(self, config):
        aqua = AQUA(config, t_rh=128)
        _hammer(aqua, config, row=5, times=64)
        redirected = aqua.redirect(_coord(config, 5))
        assert config.global_row(redirected) != config.global_row(_coord(config, 5))
        assert aqua.is_quarantine_row(config.global_row(redirected))

    def test_column_preserved_by_redirect(self, config):
        aqua = AQUA(config, t_rh=128)
        _hammer(aqua, config, row=5, times=64)
        coord = Coordinate(0, 0, 0, 5, 77)
        assert aqua.redirect(coord).col == 77

    def test_rehammered_quarantine_row_moves_again(self, config):
        aqua = AQUA(config, t_rh=128)
        _hammer(aqua, config, row=5, times=64)
        first = aqua.redirect(_coord(config, 5))
        # Hammer the quarantine row (as the memory system would,
        # post-redirect).
        for i in range(64):
            aqua.on_activation(first, 1e-3 + i * 50e-9)
        second = aqua.redirect(_coord(config, 5))
        assert config.global_row(second) != config.global_row(first)
        assert aqua.migrations == 2

    def test_quarantine_wraparound_evicts(self, config):
        aqua = AQUA(config, t_rh=128, quarantine_fraction=2 / 4096)
        assert aqua.quarantine_rows == 2
        for row in (1, 2, 3):
            _hammer(aqua, config, row=row, times=64)
        # Row 1's slot was reused; it returned home.
        assert config.global_row(aqua.redirect(_coord(config, 1))) == config.global_row(
            _coord(config, 1)
        )
        assert aqua.stats.extra.get("evictions", 0) == 1

    def test_blocks_channel(self, config):
        aqua = AQUA(config, t_rh=128)
        for i in range(63):
            aqua.on_activation(_coord(config, 9), i * 50e-9)
        action = aqua.on_activation(_coord(config, 9), 63 * 50e-9)
        assert action.blocks_channel
        assert action.stall_s > 0

    def test_invalid_quarantine_fraction(self, config):
        with pytest.raises(ValueError):
            AQUA(config, t_rh=128, quarantine_fraction=0.0)


class TestSRS:
    def test_swaps_at_third_threshold(self, config):
        srs = SRS(config, t_rh=128)
        _hammer(srs, config, row=5, times=42)
        assert srs.swaps == 1

    def test_swap_is_symmetric(self, config):
        srs = SRS(config, t_rh=128)
        _hammer(srs, config, row=5, times=42)
        dest = config.global_row(srs.redirect(_coord(config, 5)))
        assert dest != 5
        # The displaced row points back at 5's old location.
        displaced_logical = srs._reverse[5]
        assert srs.physical_of(displaced_logical) == 5

    def test_indirection_is_permutation(self, config):
        srs = SRS(config, t_rh=128)
        for row in range(20):
            _hammer(srs, config, row=row, times=42, start=row)
        physical = [srs.physical_of(row) for row in range(config.total_rows)]
        # Spot-check: forward map values unique over moved entries.
        moved = list(srs._forward.values())
        assert len(set(moved)) == len(moved)
        assert len(srs._forward) == len(srs._reverse)

    def test_swap_cost_charged(self, config):
        srs = SRS(config, t_rh=128)
        stall = _hammer(srs, config, row=5, times=42)
        assert stall == pytest.approx(srs.costs.swap_s)


class TestBlockhammer:
    def test_no_delay_below_blacklist(self, config):
        bh = Blockhammer(config, t_rh=128)
        stall = _hammer(bh, config, row=5, times=64)
        assert stall == 0.0
        assert bh.throttled_activations == 0

    def test_delays_after_blacklist(self, config):
        bh = Blockhammer(config, t_rh=128)
        stall = _hammer(bh, config, row=5, times=65)
        assert bh.throttled_activations == 1
        assert stall == pytest.approx(bh.costs.blockhammer_delay_s(128))

    def test_delay_does_not_block_channel(self, config):
        bh = Blockhammer(config, t_rh=128)
        _hammer(bh, config, row=5, times=64)
        action = bh.on_activation(_coord(config, 5), 1.0)
        assert not action.blocks_channel

    def test_counters_clear_on_window(self, config):
        bh = Blockhammer(config, t_rh=128)
        _hammer(bh, config, row=5, times=65)
        bh.on_refresh_window()
        assert bh.count_of(5) == 0
        assert _hammer(bh, config, row=5, times=64, start=1.0) == 0.0


class TestTRR:
    def test_refreshes_neighbours(self, config):
        trr = TRR(config, t_rh=128)
        _hammer(trr, config, row=5, times=64)
        assert trr.victim_refreshes == 2

    def test_refresh_disturbs_distance_two(self, config):
        trr = TRR(config, t_rh=128)
        _hammer(trr, config, row=5, times=64)
        # Refreshing rows 4 and 6 disturbs rows 3 and 7 (and 5 itself,
        # excluded as the aggressor).
        assert trr.refresh_disturbance.get(3) == 1
        assert trr.refresh_disturbance.get(7) == 1
        assert 5 not in trr.refresh_disturbance

    def test_bank_edges_clipped(self, config):
        trr = TRR(config, t_rh=128)
        _hammer(trr, config, row=0, times=64)
        assert trr.victim_refreshes == 1  # only row 1 exists

    def test_disturbance_clears_each_window(self, config):
        trr = TRR(config, t_rh=128)
        _hammer(trr, config, row=5, times=64)
        trr.on_refresh_window()
        assert trr.max_disturbance() == 0

    def test_cheap_action(self, config):
        trr = TRR(config, t_rh=128)
        stall = _hammer(trr, config, row=5, times=64)
        assert stall < 200e-9
