"""Unit tests for the many-sided and Blacksmith attack generators."""

import numpy as np
import pytest

from repro.dram.config import baseline_config
from repro.mapping.intel import CoffeeLakeMapping
from repro.workloads.attacks import blacksmith_attack, many_sided_attack


@pytest.fixture(scope="module")
def mapping():
    return CoffeeLakeMapping(baseline_config())


class TestManySided:
    def test_rows_and_spacing(self, mapping):
        attack = many_sided_attack(mapping, base_row=500, sides=8, row_gap=2, rounds=10)
        mapped = mapping.translate_trace(attack.lines)
        rows = sorted(np.unique(mapped.row).tolist())
        assert rows == [500 + 2 * i for i in range(8)]

    def test_uniform_intensity(self, mapping):
        attack = many_sided_attack(mapping, sides=5, rounds=100)
        mapped = mapping.translate_trace(attack.lines)
        _, counts = np.unique(mapped.row, return_counts=True)
        assert counts.min() == counts.max() == 100

    def test_round_robin_order(self, mapping):
        attack = many_sided_attack(mapping, sides=3, rounds=2)
        assert len(attack) == 6
        assert np.array_equal(attack.lines[:3], attack.lines[3:6])

    def test_validation(self, mapping):
        with pytest.raises(ValueError):
            many_sided_attack(mapping, sides=1)
        with pytest.raises(ValueError):
            many_sided_attack(mapping, rounds=0)


class TestBlacksmith:
    def test_non_uniform_intensity(self, mapping):
        attack = blacksmith_attack(mapping, sides=6, rounds=200, intensity_ratio=4)
        mapped = mapping.translate_trace(attack.lines)
        _, counts = np.unique(mapped.row, return_counts=True)
        counts = np.sort(counts)
        # The loud pair hammers intensity_ratio times per round.
        assert counts[-1] == 4 * counts[0]

    def test_deterministic(self, mapping):
        a = blacksmith_attack(mapping, rounds=50, seed=9)
        b = blacksmith_attack(mapping, rounds=50, seed=9)
        assert np.array_equal(a.lines, b.lines)

    def test_jitter_changes_order_between_rounds(self, mapping):
        attack = blacksmith_attack(mapping, sides=4, rounds=20, intensity_ratio=2)
        per_round = 2 * 2 + 2
        first = attack.lines[:per_round]
        later = attack.lines[per_round : 2 * per_round]
        assert not np.array_equal(first, later)  # phases jittered

    def test_validation(self, mapping):
        with pytest.raises(ValueError):
            blacksmith_attack(mapping, sides=1)
        with pytest.raises(ValueError):
            blacksmith_attack(mapping, intensity_ratio=0)


class TestWhyDeployedTRRFalls:
    """The TRRespass insight, at tracker level: a sampling tracker with
    few counters cannot follow a many-sided pattern, while the
    guaranteed trackers the secure schemes use catch every aggressor."""

    def test_small_tracker_misses_many_sided_aggressors(self, mapping):
        from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker

        attack = many_sided_attack(mapping, sides=12, rounds=300)
        mapped = mapping.translate_trace(attack.lines)
        rows = mapped.global_row

        weak = MisraGriesTracker(threshold=64, num_counters=4)
        ideal = PerRowTracker(threshold=64)
        weak_triggers = sum(weak.observe(int(r)) for r in rows)
        ideal_triggers = sum(ideal.observe(int(r)) for r in rows)

        # Ideal: every aggressor crosses 64 acts several times.
        assert ideal_triggers == 12 * (300 // 64)
        # The under-provisioned tracker misses most of them -- this is
        # exactly how TRRespass defeats in-DRAM TRR.
        assert weak_triggers < ideal_triggers / 2

    def test_adequately_sized_tracker_keeps_up(self, mapping):
        from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker

        attack = many_sided_attack(mapping, sides=12, rounds=300)
        mapped = mapping.translate_trace(attack.lines)
        rows = mapped.global_row

        strong = MisraGriesTracker(threshold=64, num_counters=64)
        ideal = PerRowTracker(threshold=64)
        strong_triggers = sum(strong.observe(int(r)) for r in rows)
        ideal_triggers = sum(ideal.observe(int(r)) for r in rows)
        assert strong_triggers == ideal_triggers
