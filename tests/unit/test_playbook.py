"""Unit tests for the declarative playbook compiler."""

import tomllib

import numpy as np
import pytest

from repro.dram.config import baseline_config
from repro.mapping.intel import CoffeeLakeMapping
from repro.workloads.playbook import (
    compile_playbook,
    is_playbook_workload,
    line_of,
    parse_range,
    parse_rows,
    spec_from_workload,
    validate_spec,
    workload_name_for,
)


@pytest.fixture(scope="module")
def mapping():
    return CoffeeLakeMapping(baseline_config())


class TestParseRange:
    def test_basic(self):
        assert parse_range("1000:1008:2") == [1000, 1002, 1004, 1006]

    def test_step_defaults_to_one(self):
        assert parse_range("5:8") == [5, 6, 7]

    def test_end_exclusive(self):
        assert parse_range("0:10:5") == [0, 5]

    @pytest.mark.parametrize(
        "text", ["10", "1:2:3:4", "a:10", "1:b", "10:0", "0:10:0", "0:10:-1"]
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_range(text)


class TestParseRows:
    def test_single_int(self):
        assert parse_rows(7) == [7]

    def test_single_range(self):
        assert parse_rows("3:6") == [3, 4, 5]

    def test_mixed_list(self):
        assert parse_rows([1, "10:14:2", 99]) == [1, 10, 12, 99]

    @pytest.mark.parametrize("bad", [[], [1.5], [True], [None], 2.5])
    def test_rejects_bad_entries(self, bad):
        with pytest.raises(ValueError):
            parse_rows(bad)


class TestValidateSpec:
    def base(self, **extra):
        spec = {"rows": [10, 20], "pattern": "paired", "rounds": 4}
        spec.update(extra)
        return spec

    def test_accepts_valid(self):
        assert validate_spec(self.base()) is not None

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown playbook spec key"):
            validate_spec(self.base(rownds=4))

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            validate_spec(self.base(pattern="zigzag"))

    def test_paired_needs_two_rows(self):
        with pytest.raises(ValueError, match="exactly 2 rows"):
            validate_spec(self.base(rows=[1, 2, 3]))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_spec([1, 2])

    def test_intensities_need_frequency_weighted(self):
        with pytest.raises(ValueError, match="frequency-weighted"):
            validate_spec(self.base(intensities=[2, 1]))

    def test_intensities_must_align_with_rows(self):
        spec = self.base(pattern="frequency-weighted", intensities=[2, 1, 1])
        with pytest.raises(ValueError, match="one repeat count per row"):
            validate_spec(spec)

    def test_intensities_must_be_positive_ints(self):
        spec = self.base(pattern="frequency-weighted", intensities=[2, 0])
        with pytest.raises(ValueError, match="integers >= 1"):
            validate_spec(spec)

    def test_injection_needs_row_and_every(self):
        with pytest.raises(ValueError, match="'row' and an 'every'"):
            validate_spec(self.base(near_injections=[{"row": 9}]))

    def test_injection_phase_must_be_inside_period(self):
        bad = [{"row": 9, "every": 4, "phase": 4}]
        with pytest.raises(ValueError, match="must be < its period"):
            validate_spec(self.base(near_injections=bad))

    def test_injection_rejects_unknown_keys(self):
        bad = [{"row": 9, "every": 4, "phaze": 1}]
        with pytest.raises(ValueError, match="unknown near_injection key"):
            validate_spec(self.base(near_injections=bad))

    def test_refresh_gap_needs_gap_row(self):
        with pytest.raises(ValueError, match="needs a gap_row"):
            validate_spec(self.base(refresh_gap=16))

    def test_gap_row_needs_refresh_gap(self):
        with pytest.raises(ValueError, match="only meaningful with refresh_gap"):
            validate_spec(self.base(gap_row=5000))

    def test_rejects_bad_address_space(self):
        with pytest.raises(ValueError, match="address_space"):
            validate_spec(self.base(address_space="page"))


class TestLineOf:
    """Satellite: every attack row goes through one geometry-checked path."""

    def test_valid_coordinate_round_trips(self, mapping):
        line = line_of(mapping, 3, 1000, 5)
        coord = mapping.translate(line)
        assert (coord.bank, coord.row, coord.col) == (3, 1000, 5)

    def test_row_underflow_is_a_clear_error(self, mapping):
        with pytest.raises(ValueError, match="row -2 out of range"):
            line_of(mapping, 0, -2)

    def test_row_overflow_is_a_clear_error(self, mapping):
        rows = mapping.config.rows_per_bank
        with pytest.raises(ValueError, match="out of range"):
            line_of(mapping, 0, rows)

    def test_bank_bounds(self, mapping):
        with pytest.raises(ValueError, match="bank"):
            line_of(mapping, mapping.config.banks, 0)

    def test_col_bounds(self, mapping):
        with pytest.raises(ValueError, match="col"):
            line_of(mapping, 0, 0, mapping.config.lines_per_row)

    def test_edge_rows_are_legal(self, mapping):
        line_of(mapping, 0, 0)
        line_of(mapping, 0, mapping.config.rows_per_bank - 1)


class TestCompile:
    def test_round_robin_is_tiled(self, mapping):
        spec = {"rows": [10, 20, 30], "pattern": "round-robin", "rounds": 4}
        trace = compile_playbook(spec, mapping)
        expected = np.tile(
            np.array([line_of(mapping, 0, r) for r in (10, 20, 30)], dtype=np.uint64), 4
        )
        assert np.array_equal(trace.lines, expected)
        assert trace.instructions == 2 * len(trace.lines)

    def test_paired_alternates(self, mapping):
        spec = {"rows": [999, 1001], "pattern": "paired", "rounds": 3}
        trace = compile_playbook(spec, mapping)
        rows = mapping.translate_trace(trace.lines).row
        assert rows.tolist() == [999, 1001] * 3

    def test_frequency_weighted_is_deterministic(self, mapping):
        spec = {
            "rows": [10, 20, 30],
            "pattern": "frequency-weighted",
            "intensities": [3, 1, 1],
            "rounds": 20,
            "seed": 42,
        }
        a = compile_playbook(spec, mapping)
        b = compile_playbook(spec, mapping)
        assert np.array_equal(a.lines, b.lines)
        other = compile_playbook({**spec, "seed": 43}, mapping)
        assert not np.array_equal(a.lines, other.lines)
        counts = np.unique(
            mapping.translate_trace(a.lines).row, return_counts=True
        )[1]
        assert sorted(counts.tolist()) == [20, 20, 60]

    def test_near_injection_hits_exactly_its_slots(self, mapping):
        spec = {
            "rows": [998, 1002],
            "pattern": "paired",
            "rounds": 8,
            "near_injections": [{"row": 999, "every": 4, "phase": 1}],
        }
        rows = mapping.translate_trace(compile_playbook(spec, mapping).lines).row
        assert rows.tolist() == [998, 999, 998, 1002] * 4

    def test_refresh_gap_inserts_at_period_boundaries(self, mapping):
        spec = {
            "rows": [10, 20],
            "pattern": "paired",
            "rounds": 4,
            "refresh_gap": 3,
            "gap_row": 5000,
        }
        rows = mapping.translate_trace(compile_playbook(spec, mapping).lines).row
        # 8 pattern slots + one gap access after every 3rd slot.
        assert rows.tolist() == [10, 20, 10, 5000, 20, 10, 20, 5000, 10, 20]

    def test_scale_shrinks_rounds(self, mapping):
        spec = {"rows": [10, 20], "pattern": "paired", "rounds": 100}
        assert len(compile_playbook(spec, mapping, scale=0.25)) == 50
        # Never below one round.
        assert len(compile_playbook(spec, mapping, scale=0.001)) == 2

    @pytest.mark.parametrize("scale", [0.0, -1.0, 1.5])
    def test_scale_bounds(self, mapping, scale):
        spec = {"rows": [10, 20], "pattern": "paired", "rounds": 4}
        with pytest.raises(ValueError, match="scale"):
            compile_playbook(spec, mapping, scale=scale)

    def test_line_space_needs_no_mapping(self):
        spec = {
            "rows": [4096, 8192],
            "pattern": "paired",
            "rounds": 2,
            "address_space": "line",
        }
        trace = compile_playbook(spec)
        assert trace.lines.tolist() == [4096, 8192, 4096, 8192]

    def test_line_space_rejects_negative_addresses(self):
        spec = {
            "rows": [-128, 128],
            "pattern": "paired",
            "rounds": 1,
            "address_space": "line",
        }
        with pytest.raises(ValueError, match="negative"):
            compile_playbook(spec)

    def test_row_space_requires_mapping(self):
        spec = {"rows": [10, 20], "pattern": "paired", "rounds": 1}
        with pytest.raises(ValueError, match="needs a mapping"):
            compile_playbook(spec)


class TestTomlSpecs:
    """Specs are plain TOML tables -- the on-disk playbook format."""

    TOML = """
    name = "attack-half-double"
    rows = [998, 1002]
    pattern = "paired"
    rounds = 40

    [[near_injections]]
    row = 999
    every = 8
    phase = 0

    [[near_injections]]
    row = 1001
    every = 8
    phase = 5
    """

    def test_toml_compiles_like_the_dict(self, mapping):
        spec = tomllib.loads(self.TOML)
        trace = compile_playbook(spec, mapping)
        assert len(trace) == 80
        rows, counts = np.unique(
            mapping.translate_trace(trace.lines).row, return_counts=True
        )
        assert dict(zip(rows.tolist(), counts.tolist())) == {
            998: 30,
            999: 10,
            1001: 10,
            1002: 30,
        }


class TestWorkloadNames:
    def test_round_trip(self):
        spec = {"rows": [999, 1001], "pattern": "paired", "rounds": 8}
        name = workload_name_for(spec)
        assert is_playbook_workload(name)
        assert spec_from_workload(name) == spec

    def test_equal_specs_share_a_name(self):
        a = {"rows": [1, 2], "pattern": "paired", "rounds": 3, "bank": 0}
        b = {"bank": 0, "rounds": 3, "pattern": "paired", "rows": [1, 2]}
        assert workload_name_for(a) == workload_name_for(b)

    def test_malformed_json_is_rejected(self):
        with pytest.raises(ValueError, match="malformed JSON"):
            spec_from_workload("playbook:notjson")

    def test_non_playbook_names_are_rejected(self):
        assert not is_playbook_workload("xz")
        with pytest.raises(ValueError, match="not a playbook workload"):
            spec_from_workload("xz")
