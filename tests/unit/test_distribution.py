"""Unit tests for the activation-distribution analysis."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    ActivationDistribution,
    activation_distribution,
    compare_distributions,
)
from repro.dram.fast_model import TraceStats


def _stats(acts_per_row):
    acts = np.asarray(acts_per_row, dtype=np.int64)
    return TraceStats(
        n_accesses=int(acts.sum()),
        n_activations=int(acts.sum()),
        n_hits=0,
        row_ids=np.arange(acts.size, dtype=np.int64),
        acts_per_row=acts,
        unique_rows_touched=int(acts.size),
    )


class TestDistribution:
    def test_empty(self):
        dist = activation_distribution(_stats([]))
        assert dist.rows_with_activations == 0
        assert dist.max_acts == 0
        assert dist.concentration_index == 0.0

    def test_uniform_distribution(self):
        dist = activation_distribution(_stats([10] * 1000))
        assert dist.p50 == 10
        assert dist.p999 == 10
        assert dist.max_acts == 10
        # Top 1% of rows hold exactly 1% of activations.
        assert dist.concentration_index == pytest.approx(0.01)

    def test_concentrated_distribution(self):
        acts = [1] * 990 + [1000] * 10
        dist = activation_distribution(_stats(acts))
        assert dist.max_acts == 1000
        assert dist.concentration_index > 0.9

    def test_decade_buckets(self):
        dist = activation_distribution(_stats([1, 5, 20, 100, 500, 2000, 9999]))
        assert dist.decade_counts["[1,4)"] == 1
        assert dist.decade_counts["[4,16)"] == 1
        assert dist.decade_counts["[16,64)"] == 1
        assert dist.decade_counts["[64,256)"] == 1
        assert dist.decade_counts["[256,1024)"] == 1
        assert dist.decade_counts["[4096,inf)"] == 1
        assert sum(dist.decade_counts.values()) == 7

    def test_describe_lines(self):
        dist = activation_distribution(_stats([10, 20, 30]))
        text = "\n".join(dist.describe())
        assert "percentiles" in text
        assert "concentration" in text


class TestCompare:
    def test_tabulation(self):
        a = activation_distribution(_stats([10] * 100))
        b = activation_distribution(_stats([1] * 99 + [500]))
        rows = compare_distributions(["flat", "spiky"], [a, b])
        assert rows[0][0] == "flat"
        assert rows[1][5] == 500  # max column
        assert rows[1][6] > rows[0][6]  # concentration

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_distributions(["a"], [])


class TestActdistExperiment:
    def test_rubix_flattens_tail(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment("actdist", 0.05, 2)
        rows = {row[0]: row for row in result.rows}
        for workload in ("blender", "lbm"):
            baseline = rows[f"{workload}/coffeelake"]
            rubix = rows[f"{workload}/rubix-s-gs1"]
            assert rubix[4] < baseline[4]  # p99.9 collapses
            assert rubix[5] < baseline[5]  # max collapses
