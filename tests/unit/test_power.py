"""Unit tests for the DDR4 power model."""

import pytest

from repro.dram.power import DDR4PowerModel, DDR4PowerParams


@pytest.fixture()
def model():
    return DDR4PowerModel()


class TestComponents:
    def test_idle_is_background_plus_overhead(self, model):
        power = model.compute(activations=0, reads=0, writes=0, window_s=0.064)
        assert power.activate_w == 0
        assert power.io_w == 0
        assert power.total_w == pytest.approx(
            power.background_w + power.refresh_w + power.overhead_w
        )

    def test_activation_power_scales_linearly(self, model):
        p1 = model.compute(activations=100_000, reads=0, writes=0, window_s=0.064)
        p2 = model.compute(activations=200_000, reads=0, writes=0, window_s=0.064)
        assert p2.activate_w == pytest.approx(2 * p1.activate_w)

    def test_io_power_scales_with_traffic(self, model):
        p1 = model.compute(activations=0, reads=100_000, writes=0, window_s=0.064)
        p2 = model.compute(activations=0, reads=200_000, writes=0, window_s=0.064)
        assert p2.io_w == pytest.approx(2 * p1.io_w)

    def test_baseline_operating_point_plausible(self, model):
        # ~2.3M accesses and ~1M ACTs per 64 ms window (the average
        # workload): total DIMM power should land in the 2-4 W regime the
        # paper's percentages are computed against.
        power = model.compute(
            activations=1_000_000, reads=1_600_000, writes=700_000, window_s=0.064
        )
        assert 1.5 < power.total_w < 4.5

    def test_ranks_scale_static_components(self, model):
        p1 = model.compute(activations=1000, reads=0, writes=0, window_s=0.064, ranks=1)
        p2 = model.compute(activations=1000, reads=0, writes=0, window_s=0.064, ranks=2)
        assert p2.background_w == pytest.approx(2 * p1.background_w)
        assert p2.activate_w == pytest.approx(p1.activate_w)


class TestValidation:
    def test_negative_counts_rejected(self, model):
        with pytest.raises(ValueError):
            model.compute(activations=-1, reads=0, writes=0, window_s=0.064)

    def test_zero_window_rejected(self, model):
        with pytest.raises(ValueError):
            model.compute(activations=0, reads=0, writes=0, window_s=0.0)

    def test_oversubscribed_bus_rejected(self, model):
        with pytest.raises(ValueError):
            # 64 ms window fits ~19.2M bursts; ask for far more.
            model.compute(activations=0, reads=50_000_000, writes=0, window_s=0.064)


class TestBreakdownHelpers:
    def test_delta_mw(self, model):
        a = model.compute(activations=0, reads=0, writes=0, window_s=0.064)
        b = model.compute(activations=1_000_000, reads=0, writes=0, window_s=0.064)
        assert b.delta_mw(a) > 0
        assert b.delta_mw(a) == pytest.approx((b.total_w - a.total_w) * 1e3)

    def test_percent_increase(self, model):
        a = model.compute(activations=0, reads=0, writes=0, window_s=0.064)
        b = model.compute(activations=1_000_000, reads=0, writes=0, window_s=0.064)
        assert b.percent_increase_over(a) > 0

    def test_activate_energy_order_of_magnitude(self):
        # An ACT/PRE pair on a 16-device rank: single-digit nanojoules.
        energy = DDR4PowerParams().activate_energy_j
        assert 1e-10 < energy < 1e-7
