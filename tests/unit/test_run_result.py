"""Unit tests for RunResult breakdowns and the sec73 experiment shape."""

import pytest

from repro.dram.config import baseline_config
from repro.mapping.intel import CoffeeLakeMapping
from repro.core.rubix_d import RubixDMapping
from repro.perf.simulator import RunResult, Simulator
from repro.workloads.spec import spec_trace


class TestBreakdown:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulator(baseline_config())

    @pytest.fixture(scope="class")
    def trace(self):
        return spec_trace("mcf", scale=0.05)

    def test_components_sum_to_total(self, sim, trace):
        result = sim.run(
            trace, CoffeeLakeMapping(sim.config), scheme="srs", t_rh=128
        )
        total = (
            result.t_core_s
            + result.t_memory_s
            + result.t_mitigation_s
            + result.t_remap_s
        )
        assert total == pytest.approx(result.exec_time_s)
        fractions = result.breakdown()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mitigation_dominates_baseline_at_low_threshold(self, sim, trace):
        result = sim.run(
            trace, CoffeeLakeMapping(sim.config), scheme="blockhammer", t_rh=128
        )
        fractions = result.breakdown()
        assert fractions["mitigation"] > fractions["memory"]

    def test_remap_component_only_for_rubix_d(self, sim, trace):
        static = sim.run(trace, CoffeeLakeMapping(sim.config), scheme="none")
        dynamic = sim.run(
            trace, RubixDMapping(sim.config, gang_size=4), scheme="none"
        )
        assert static.t_remap_s == 0.0
        assert dynamic.t_remap_s > 0.0

    def test_unnormalized_slowdown_raises(self):
        result = RunResult(
            trace_name="t",
            mapping_name="m",
            scheme="none",
            t_rh=128,
            accesses=1,
            activations=1,
            hit_rate=0.0,
            unique_rows=1,
            hot_rows_64=0,
            hot_rows_512=0,
            max_row_activations=1,
            mitigations=0,
            remap_swaps=0,
            exec_time_s=1.0,
            window_s=1.0,
        )
        with pytest.raises(ValueError):
            result.slowdown_pct


class TestSec73:
    def test_rubix_cuts_victim_refresh_load(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment("sec73", 0.05, 4)
        rows = result.row_map()
        assert rows["rubix-s-gs4"][1] < rows["coffeelake"][1] / 10
