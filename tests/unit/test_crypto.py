"""Unit tests for the cipher substrate (Feistel / KCipher / keys)."""

import numpy as np
import pytest

from repro.crypto.feistel import FeistelNetwork
from repro.crypto.kcipher import KCIPHER_KEY_BITS, KCIPHER_LATENCY_CYCLES, KCipher
from repro.crypto.keys import KeySchedule, generate_key


class TestFeistelBijectivity:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8, 11, 13])
    def test_exhaustive_permutation(self, width):
        net = FeistelNetwork(width=width, key=0xABCD, rounds=6)
        domain = list(range(1 << width))
        images = [net.encrypt(v) for v in domain]
        assert sorted(images) == domain

    @pytest.mark.parametrize("width", [2, 7, 16, 26, 28])
    def test_decrypt_inverts_encrypt(self, width):
        net = FeistelNetwork(width=width, key=99, rounds=6)
        for value in (0, 1, (1 << width) - 1, (1 << width) // 3):
            assert net.decrypt(net.encrypt(value)) == value

    def test_array_matches_scalar(self):
        net = FeistelNetwork(width=20, key=7, rounds=6)
        values = np.arange(1000, dtype=np.uint64)
        enc = net.encrypt(values)
        for i in (0, 17, 999):
            assert int(enc[i]) == net.encrypt(int(values[i]))

    def test_array_roundtrip(self):
        net = FeistelNetwork(width=26, key=11, rounds=6)
        values = np.random.default_rng(0).integers(0, 1 << 26, 5000, dtype=np.uint64)
        assert np.array_equal(net.decrypt(net.encrypt(values)), values)

    def test_keys_change_permutation(self):
        a = FeistelNetwork(width=16, key=1)
        b = FeistelNetwork(width=16, key=2)
        values = np.arange(4096, dtype=np.uint64)
        assert not np.array_equal(a.encrypt(values), b.encrypt(values))

    def test_diffusion(self):
        # Flipping one input bit should change ~half the output bits on average.
        net = FeistelNetwork(width=24, key=3)
        flips = []
        for value in range(0, 1 << 16, 257):
            a = net.encrypt(value)
            b = net.encrypt(value ^ 1)
            flips.append(bin(a ^ b).count("1"))
        assert 8 < np.mean(flips) < 16

    def test_domain_checked(self):
        net = FeistelNetwork(width=8, key=5)
        with pytest.raises(ValueError):
            net.encrypt(256)
        with pytest.raises(ValueError):
            net.encrypt(np.array([300], dtype=np.uint64))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FeistelNetwork(width=0, key=1)
        with pytest.raises(ValueError):
            FeistelNetwork(width=64, key=1)
        with pytest.raises(ValueError):
            FeistelNetwork(width=8, key=1, rounds=3)  # odd

    def test_width_one_is_keyed_flip(self):
        net = FeistelNetwork(width=1, key=1)
        assert sorted([net.encrypt(0), net.encrypt(1)]) == [0, 1]
        assert net.decrypt(net.encrypt(0)) == 0


class TestKCipher:
    def test_paper_constants(self):
        assert KCIPHER_LATENCY_CYCLES == 3
        assert KCIPHER_KEY_BITS == 96

    def test_paper_widths(self):
        # 28-bit cipher for 16 GB line-level, 26-bit at gang-size 4.
        for width in (26, 27, 28):
            cipher = KCipher(width=width, key=0x123456789ABCDEF)
            value = (1 << width) - 5
            assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_storage_is_small(self):
        # The paper reports ~16 B of controller storage for Rubix-S.
        assert KCipher(width=26, key=1).storage_bytes <= 20

    def test_key_width_enforced(self):
        with pytest.raises(ValueError):
            KCipher(width=26, key=1 << 96)

    def test_repr(self):
        assert "26" in repr(KCipher(width=26, key=1))


class TestKeySchedule:
    def test_initial_keys_in_range(self):
        schedule = KeySchedule(nbits=21, seed=1)
        assert 0 <= schedule.curr_key < (1 << 21)
        assert 0 < schedule.next_key < (1 << 21)  # never zero

    def test_epoch_advance_folds_keys(self):
        schedule = KeySchedule(nbits=16, seed=2)
        curr, nxt = schedule.curr_key, schedule.next_key
        schedule.advance_epoch()
        assert schedule.curr_key == curr ^ nxt
        assert schedule.next_key != 0
        assert schedule.epoch == 1

    def test_deterministic(self):
        a = KeySchedule(nbits=16, seed=3)
        b = KeySchedule(nbits=16, seed=3)
        assert a.history() == b.history()

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            KeySchedule(nbits=0, seed=1)

    def test_generate_key_labelled(self):
        assert generate_key(1, "cipher", 64) != generate_key(1, "remap", 64)
