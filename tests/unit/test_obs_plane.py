"""Unit tests for the live observability plane.

Covers the pieces added around the core telemetry layer: distributed
trace assembly (:mod:`repro.obs.assemble`), the in-process HTTP
endpoint (:mod:`repro.obs.live`), the sampling profiler
(:mod:`repro.obs.profile`), per-(run, pid) event-stream keying, and the
bench-history regression gate (``scripts/bench_regress.py``).
"""

import importlib.util
import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import runtime as obs_runtime
from repro.obs.assemble import (
    assemble_traces,
    load_span_events,
    render_trace,
    validate_traces,
)
from repro.obs.live import PROMETHEUS_CONTENT_TYPE, LiveEndpoint
from repro.obs.profile import PROFILER, SamplingProfiler, wrap_kernel
from repro.obs.schema import validate_events_lines, validate_telemetry_dir

REPO_ROOT = Path(__file__).resolve().parents[2]


def _span(
    name,
    trace_id,
    span_id,
    parent="",
    *,
    pid=100,
    ts=1000.0,
    ts_mono=50.0,
    duration=0.5,
    status="ok",
):
    return {
        "type": "span",
        "name": name,
        "path": name,
        "duration_s": duration,
        "status": status,
        "attrs": {},
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_span_id": parent,
        "ts": ts,
        "ts_mono": ts_mono,
        "pid": pid,
    }


class TestAssemble:
    def test_single_rooted_tree_links_children(self):
        events = [
            _span("service.submit", "t1", "root", pid=1),
            _span("campaign.cell", "t1", "c1", "root", pid=2),
            _span("campaign.cell", "t1", "c2", "root", pid=3),
            _span("sim.window", "t1", "g1", "c1", pid=2),
        ]
        (tree,) = assemble_traces(events)
        assert tree.root is not None and tree.root.name == "service.submit"
        assert not tree.orphans
        assert {child.span_id for child in tree.root.children} == {"c1", "c2"}
        assert tree.spans["c1"].children[0].span_id == "g1"
        assert tree.pids == [1, 2, 3]

    def test_orphans_and_multiple_roots_detected(self):
        events = [
            _span("campaign.run", "t1", "r1"),
            _span("campaign.run", "t1", "r2"),
            _span("campaign.cell", "t1", "c1", "gone"),
        ]
        (tree,) = assemble_traces(events)
        assert tree.root is None and len(tree.roots) == 2
        assert [orphan.span_id for orphan in tree.orphans] == ["c1"]
        errors = validate_traces(events)
        assert any("2 roots" in error for error in errors)
        assert any("missing" in error and "c1" in error for error in errors)

    def test_duplicate_span_ids_keep_first(self):
        events = [
            _span("campaign.run", "t1", "r1", duration=0.1),
            _span("campaign.run", "t1", "r1", duration=9.9),
        ]
        (tree,) = assemble_traces(events)
        assert tree.span_count() == 1
        assert tree.spans["r1"].duration_s == 0.1

    def test_same_pid_siblings_order_by_monotonic_clock(self):
        # Wall clock went backwards (NTP step) between the siblings; the
        # per-process monotonic clock must win.
        events = [
            _span("campaign.run", "t1", "root", ts=1000.0, ts_mono=10.0),
            _span("campaign.cell", "t1", "a", "root", ts=2000.0, ts_mono=11.0),
            _span("campaign.cell", "t1", "b", "root", ts=500.0, ts_mono=12.0),
        ]
        (tree,) = assemble_traces(events)
        assert [child.span_id for child in tree.root.children] == ["a", "b"]

    def test_spans_without_trace_context_are_skipped(self):
        events = [_span("campaign.run", "", "")]
        assert assemble_traces(events) == []
        assert validate_traces(events) == []

    def test_render_marks_orphans_and_processes(self):
        events = [
            _span("service.submit", "t1", "root", pid=1),
            _span("campaign.cell", "t1", "c1", "root", pid=2),
            _span("campaign.cell", "t1", "lost", "gone", pid=3),
        ]
        (tree,) = assemble_traces(events)
        text = render_trace(tree)
        assert "3 processes" in text.splitlines()[0]
        assert "`-- service.submit" in text
        assert "ORPHAN (parent gone missing)" in text

    def test_load_span_events_skips_junk_lines(self, tmp_path):
        path = tmp_path / "events-abc-1.jsonl"
        path.write_text(
            "not json\n"
            + json.dumps({"type": "log", "event": "x"})
            + "\n"
            + json.dumps(_span("campaign.run", "t1", "r1"))
            + "\n"
        )
        events = load_span_events(tmp_path)
        assert len(events) == 1 and events[0]["name"] == "campaign.run"


class TestLiveEndpoint:
    def _get(self, address, route):
        return urllib.request.urlopen(f"http://{address}{route}", timeout=5)

    def test_routes_and_content_types(self):
        with LiveEndpoint(
            "127.0.0.1:0",
            status_provider=lambda: {"cells": 8},
            health_provider=lambda: {"status": "ok"},
        ) as endpoint:
            response = self._get(endpoint.address, "/metrics")
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            response = self._get(endpoint.address, "/status")
            assert json.load(response) == {"cells": 8}
            response = self._get(endpoint.address, "/healthz")
            assert json.load(response)["status"] == "ok"

    def test_degraded_health_returns_503(self):
        with LiveEndpoint(
            "127.0.0.1:0", health_provider=lambda: {"status": "degraded"}
        ) as endpoint:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self._get(endpoint.address, "/healthz")
            assert exc_info.value.code == 503
            assert json.load(exc_info.value)["status"] == "degraded"

    def test_unknown_route_404(self):
        with LiveEndpoint("127.0.0.1:0") as endpoint:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                self._get(endpoint.address, "/nope")
            assert exc_info.value.code == 404

    def test_provider_exception_becomes_error_payload(self):
        def broken():
            raise RuntimeError("boom")

        with LiveEndpoint("127.0.0.1:0", status_provider=broken) as endpoint:
            payload = json.load(self._get(endpoint.address, "/status"))
            assert payload["status"] == "error" and "boom" in payload["error"]

    def test_close_is_idempotent_and_releases_port(self):
        endpoint = LiveEndpoint("127.0.0.1:0")
        address = endpoint.start()
        assert address == endpoint.start()  # idempotent start
        endpoint.close()
        endpoint.close()
        with pytest.raises(OSError):
            urllib.request.urlopen(f"http://{address}/metrics", timeout=0.5)

    def test_rejects_malformed_listen(self):
        with pytest.raises(ValueError):
            LiveEndpoint("no-port")


def _busy(deadline):
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestSamplingProfiler:
    def test_disabled_phase_and_wrap_are_noops(self):
        profiler = SamplingProfiler()
        scope = profiler.phase("translate_trace")
        assert profiler.phase("analyze_trace") is scope  # shared null scope

        def fn():
            return 42

        assert wrap_kernel("translate_trace", fn) is fn  # PROFILER is off

    def test_samples_attribute_to_active_phase(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.enable()
        try:
            with profiler.phase("translate_trace"):
                _busy(time.perf_counter() + 0.08)
        finally:
            profiler.disable()
        samples = profiler.samples()
        assert "translate_trace" in samples
        stacks = samples["translate_trace"]
        assert sum(stacks.values()) >= 1
        assert any("_busy" in stack for stack in stacks)
        (path,) = profiler.write(tmp_path)
        assert path.name == f"profile-translate_trace-{os.getpid()}.collapsed"
        stack, count = path.read_text().splitlines()[0].rsplit(" ", 1)
        assert ";" in stack and int(count) >= 1

    def test_nested_phases_attribute_to_innermost(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.enable()
        try:
            with profiler.phase("outer"):
                with profiler.phase("inner"):
                    _busy(time.perf_counter() + 0.05)
        finally:
            profiler.disable()
        samples = profiler.samples()
        assert samples.get("inner")
        # After the inner scope exits the thread re-registers as outer,
        # so outer may hold a few samples -- but never inner's majority.
        inner = sum(samples["inner"].values())
        outer = sum(samples.get("outer", {}).values())
        assert inner > outer

    def test_write_with_no_samples_writes_nothing(self, tmp_path):
        assert SamplingProfiler().write(tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_wrap_kernel_scopes_phase_when_enabled(self):
        PROFILER.enable(interval_s=0.001)
        try:
            seen = {}

            def fn(x):
                seen["phase"] = dict(PROFILER._active).get(
                    __import__("threading").get_ident()
                )
                return x + 1

            wrapped = wrap_kernel("remap_steps", fn)
            assert wrapped is not fn and wrapped.__wrapped__ is fn
            assert wrapped(1) == 2
            assert seen["phase"] == "remap_steps"
        finally:
            PROFILER.disable()
            PROFILER.clear()

    def test_get_kernel_identity_preserved_when_off(self):
        from repro.perf.backends import get_kernel, resolve_backend

        backend = resolve_backend()
        assert get_kernel("translate_trace", backend) is get_kernel(
            "translate_trace", backend
        )


@pytest.fixture
def clean_runtime():
    obs_runtime.reset()
    saved = {
        key: os.environ.pop(key, None)
        for key in (obs_runtime.TELEMETRY_DIR_ENV, obs_runtime.RUN_ID_ENV)
    }
    yield
    obs_runtime.reset()
    for key, value in saved.items():
        if value is not None:
            os.environ[key] = value


class TestRunScopedEventFiles:
    def test_event_file_keyed_by_run_and_pid(self, tmp_path, clean_runtime):
        obs_runtime.configure(enabled=True, telemetry_dir=tmp_path)
        with obs_runtime.TRACER.span("campaign.run"):
            pass
        run = obs_runtime.run_id()
        (path,) = tmp_path.glob("events-*.jsonl")
        assert path.name == f"events-{run}-{os.getpid()}.jsonl"
        event = json.loads(path.read_text().splitlines()[0])
        assert event["run"] == run
        assert os.environ[obs_runtime.RUN_ID_ENV] == run

    def test_two_runs_sharing_a_dir_get_separate_files(
        self, tmp_path, clean_runtime
    ):
        obs_runtime.configure(enabled=True, telemetry_dir=tmp_path)
        with obs_runtime.TRACER.span("campaign.run"):
            pass
        first = obs_runtime.run_id()
        # A second run in the same process tree (e.g. a pid recycled by
        # the OS, or a new CLI invocation appending to the same dir).
        obs_runtime.apply_config(
            {"enabled": True, "telemetry_dir": str(tmp_path), "run_id": "deadbeef"}
        )
        with obs_runtime.TRACER.span("campaign.run"):
            pass
        names = sorted(path.name for path in tmp_path.glob("events-*.jsonl"))
        assert names == sorted(
            [
                f"events-{first}-{os.getpid()}.jsonl",
                f"events-deadbeef-{os.getpid()}.jsonl",
            ]
        )
        for path in tmp_path.glob("events-*.jsonl"):
            assert validate_events_lines(
                path.read_text().splitlines(), source=path.name
            ) == []

    def test_mixed_run_ids_in_one_file_rejected(self):
        lines = [
            json.dumps({"type": "log", "ts": 1, "level": "info", "logger": "x", "event": "e", "run": "aaaa"}),
            json.dumps({"type": "log", "ts": 2, "level": "info", "logger": "x", "event": "e", "run": "bbbb"}),
            json.dumps({"type": "log", "ts": 3, "level": "info", "logger": "x", "event": "e", "run": "cccc"}),
        ]
        errors = validate_events_lines(lines, source="events-aaaa-1.jsonl")
        mixed = [error for error in errors if "mixed run ids" in error]
        assert len(mixed) == 2  # every foreign run id flagged, not just the first
        assert "aaaa" in mixed[0] and "bbbb" in mixed[0]

    def test_trace_completeness_is_opt_in(self, tmp_path, clean_runtime):
        # An orphan span: parent context attached from a process whose
        # own spans never landed in this directory.
        orphan = _span("campaign.cell", "t1", "c1", "never-wrote")
        orphan["run"] = "aaaa"
        (tmp_path / "events-aaaa-7.jsonl").write_text(json.dumps(orphan) + "\n")
        relaxed = validate_telemetry_dir(tmp_path, required=(), traces=False)
        assert not any("parent" in error for error in relaxed)
        strict = validate_telemetry_dir(tmp_path, required=(), traces=True)
        assert any("missing parent never-wrote" in error for error in strict)


def _load_bench_regress():
    spec = importlib.util.spec_from_file_location(
        "bench_regress", REPO_ROOT / "scripts" / "bench_regress.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchRegress:
    def _pair(self, seconds, *, quick=False):
        return {
            "config": {"lines": 1000, "quick": quick},
            "kernels": {
                kernel: {"optimized_s": value} for kernel, value in seconds.items()
            },
        }

    def _backends(self, seconds, *, quick=False):
        return {
            "config": {"lines": 1000, "quick": quick},
            "mode": "backends",
            "kernels": {
                kernel: {"seconds": {"reference": value * 10, "numpy": value}}
                for kernel, value in seconds.items()
            },
        }

    def test_regression_over_threshold_fails(self):
        bench = _load_bench_regress()
        history = [
            self._pair({"translate_trace": 1.0}),
            self._pair({"translate_trace": 1.2}),
        ]
        regressions, comparisons = bench.check_regressions(history, 15.0)
        assert len(regressions) == 1 and "+20.0%" in regressions[0]
        assert comparisons[0][0] == "translate_trace"

    def test_within_threshold_passes(self):
        bench = _load_bench_regress()
        history = [
            self._pair({"translate_trace": 1.0}),
            self._pair({"translate_trace": 1.1}),
        ]
        regressions, _ = bench.check_regressions(history, 15.0)
        assert regressions == []

    def test_compares_against_best_prior_not_latest(self):
        bench = _load_bench_regress()
        history = [
            self._pair({"translate_trace": 1.0}),  # the best
            self._pair({"translate_trace": 2.0}),  # a slow CI box
            self._pair({"translate_trace": 1.3}),
        ]
        regressions, _ = bench.check_regressions(history, 15.0)
        assert len(regressions) == 1  # 1.3 vs best 1.0 = +30%

    def test_mismatched_config_never_compared(self):
        bench = _load_bench_regress()
        history = [
            self._pair({"translate_trace": 0.001}, quick=True),
            self._pair({"translate_trace": 1.0}, quick=False),
        ]
        regressions, comparisons = bench.check_regressions(history, 15.0)
        assert regressions == [] and comparisons == []

    def test_backend_entries_score_fastest_non_reference(self):
        bench = _load_bench_regress()
        assert bench.kernel_seconds(self._backends({"analyze_trace": 0.5})) == {
            "analyze_trace": 0.5
        }

    def test_pair_and_backend_entries_interoperate(self):
        bench = _load_bench_regress()
        history = [
            self._backends({"translate_trace": 1.0}),
            self._pair({"translate_trace": 1.4}),
        ]
        regressions, _ = bench.check_regressions(history, 15.0)
        assert len(regressions) == 1

    def test_single_entry_history_passes_vacuously(self):
        bench = _load_bench_regress()
        assert bench.check_regressions([self._pair({"k": 1.0})], 15.0) == ([], [])

    def test_cli_against_repo_history(self, capsys):
        bench = _load_bench_regress()
        assert bench.main(["--quiet"]) in (0, 1)  # advisory semantics decide
