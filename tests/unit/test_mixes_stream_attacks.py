"""Unit tests for mixes, the STREAM suite, and attack generators."""

import numpy as np
import pytest

from repro.dram.config import baseline_config
from repro.mapping.intel import CoffeeLakeMapping
from repro.workloads.attacks import (
    blind_adjacency_attack,
    double_sided_attack,
    half_double_attack,
    single_sided_attack,
)
from repro.workloads.mixes import MIX_COUNT, mix_names, mix_profile, mix_trace
from repro.workloads.stream_suite import STREAM_KERNELS, stream_suite_trace


class TestMixes:
    def test_sixteen_mixes(self):
        assert len(mix_names()) == MIX_COUNT

    def test_profile_has_four_members(self):
        members = mix_profile("mix1")
        assert len(members) == 4

    def test_profiles_deterministic(self):
        assert mix_profile("mix3") == mix_profile("mix3")
        assert mix_profile("mix3") != mix_profile("mix4") or True  # may collide

    def test_invalid_names(self):
        with pytest.raises(ValueError):
            mix_profile("blender")
        with pytest.raises(ValueError):
            mix_profile("mix17")

    def test_trace_members_in_disjoint_quarters(self):
        trace = mix_trace("mix1", scale=0.02)
        quarters = np.unique(trace.lines >> np.uint64(26))
        assert len(quarters) >= 2  # several members present
        assert int(trace.lines.max()) < (1 << 28)

    def test_trace_deterministic(self):
        a = mix_trace("mix2", scale=0.02)
        b = mix_trace("mix2", scale=0.02)
        assert np.array_equal(a.lines, b.lines)


class TestStreamSuite:
    def test_four_kernels(self):
        assert set(STREAM_KERNELS) == {"copy", "scale", "add", "triad"}

    def test_copy_alternates_two_arrays(self):
        trace = stream_suite_trace("copy", accesses=1000)
        # Per step: one access to each of two arrays.
        delta = int(trace.lines[1]) - int(trace.lines[0])
        assert delta != 0
        assert trace.lines[2] == trace.lines[0] + 1

    def test_triad_uses_three_arrays(self):
        trace = stream_suite_trace("triad", accesses=999)
        assert len(np.unique(trace.lines[:3])) == 3

    def test_memory_intensive(self):
        trace = stream_suite_trace("add", accesses=60_000)
        assert trace.mpki > 50  # paper: LLC MPKI above 50

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            stream_suite_trace("mul")

    def test_arrays_fit_check(self):
        with pytest.raises(ValueError):
            stream_suite_trace("triad", line_addr_bits=20)


class TestAttacks:
    @pytest.fixture(scope="class")
    def mapping(self):
        return CoffeeLakeMapping(baseline_config())

    def test_single_sided_targets_one_row(self, mapping):
        config = mapping.config
        attack = single_sided_attack(mapping, aggressor_row=100, activations=50)
        mapped = mapping.translate_trace(attack.lines)
        rows = np.unique(mapped.global_row)
        assert len(rows) == 2  # aggressor + dummy
        assert config.global_row(mapping.translate(int(attack.lines[0]))) in rows

    def test_double_sided_brackets_victim(self, mapping):
        attack = double_sided_attack(mapping, victim_row=1000, activations_per_side=10)
        mapped = mapping.translate_trace(attack.lines)
        rows = sorted(np.unique(mapped.row).tolist())
        assert rows == [999, 1001]

    def test_half_double_rows(self, mapping):
        attack = half_double_attack(mapping, victim_row=1000, far_activations=2000)
        mapped = mapping.translate_trace(attack.lines)
        rows = set(np.unique(mapped.row).tolist())
        assert {998, 1002}.issubset(rows)  # far aggressors dominate
        assert {999, 1001}.issubset(rows)  # occasional near rows

    def test_half_double_near_rows_stay_cold(self, mapping):
        attack = half_double_attack(mapping, victim_row=1000, far_activations=20000)
        mapped = mapping.translate_trace(attack.lines)
        rows, counts = np.unique(mapped.row, return_counts=True)
        by_row = dict(zip(rows.tolist(), counts.tolist()))
        # Near rows must stay below any plausible tracker threshold.
        assert by_row[999] < 64
        assert by_row[1001] < 64
        assert by_row[998] > 128

    def test_blind_attack_addresses(self):
        attack = blind_adjacency_attack(activations=10)
        assert len(attack) == 20

    def test_validation(self, mapping):
        with pytest.raises(ValueError):
            single_sided_attack(mapping, activations=0)
        with pytest.raises(ValueError):
            half_double_attack(mapping, near_every=1)
