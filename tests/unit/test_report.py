"""Unit tests for the Markdown report generator."""

import json

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.report import (
    build_report,
    load_results,
    result_from_dict,
    write_report,
)


@pytest.fixture()
def result():
    return ExperimentResult(
        experiment_id="fig-x",
        title="Demo figure",
        headers=["config", "value"],
        rows=[["baseline", 10.5], ["rubix", 1.0]],
        notes=["a caveat"],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        clone = result_from_dict(json.loads(result.to_json()))
        assert clone.experiment_id == result.experiment_id
        assert clone.rows == result.rows
        assert clone.notes == result.notes

    def test_invalid_dict_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"title": "x"})


class TestMarkdown:
    def test_report_structure(self, result):
        text = build_report([result])
        assert "# Rubix reproduction report" in text
        assert "## fig-x" in text
        assert "| config | value |" in text
        assert "| baseline | 10.5 |" in text
        assert "> a caveat" in text

    def test_pipe_escaping(self):
        tricky = ExperimentResult("x", "t", ["a"], [["foo|bar"]])
        assert "foo\\|bar" in build_report([tricky])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_report([])


class TestFilesystem:
    def test_load_and_write(self, tmp_path, result):
        results_dir = tmp_path / "results"
        results_dir.mkdir()
        (results_dir / "fig-x.json").write_text(result.to_json())
        loaded = load_results(results_dir)
        assert len(loaded) == 1

        output = write_report(results_dir, tmp_path / "report.md", title="My run")
        text = output.read_text()
        assert "# My run" in text
        assert "fig-x" in text

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "missing")

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            load_results(empty)

    def test_end_to_end_with_real_experiment(self, tmp_path):
        from repro.experiments.runner import main

        results_dir = tmp_path / "results"
        assert main(["run", "fig1a", "--json", str(results_dir / "fig1a.json")]) == 0
        report = write_report(results_dir, tmp_path / "report.md")
        assert "fig1a" in report.read_text()
