"""Unit tests for the socket transport: codec, framing, fault detection.

The distributed service's identity guarantee rests on two properties
tested here at the wire layer, without any scheduler involved:

* the JSON codec round-trips every protocol message -- floats included
  -- exactly, so a record shipped over TCP is byte-identical to one
  computed locally;
* the receiver classifies every way a frame can go wrong into exactly
  the typed envelope the scheduler recovers from: ``FrameError`` for a
  damaged-but-framed payload (discard, nack, keep reading) vs.
  ``ConnectionLostError`` for anything that desynchronizes the stream
  (drop the connection, let lease expiry take over).
"""

import socket
import threading

import pytest

from repro.errors import ConnectionLostError, FrameError, TransportError
from repro.service.protocol import (
    CompletionMsg,
    GoodbyeMsg,
    HeartbeatMsg,
    HelloMsg,
    NackMsg,
    RegisteredMsg,
    ShutdownMsg,
)
from repro.service.transport import (
    HEADER,
    MAGIC,
    MAX_FRAME_BYTES,
    FramedSocket,
    corrupt_frame,
    decode_payload,
    encode_frame,
    encode_message,
    encode_payload,
    from_wire,
    parse_address,
    to_wire,
    truncate_frame,
)

MESSAGES = [
    HelloMsg(name="lab-3", pid=4242, reconnects=2),
    RegisteredMsg(worker_id="n7", heartbeat_interval_s=0.25),
    HeartbeatMsg(worker_id="n7", lease_id="L-1", sent_at=1.5, sent_monotonic=88.25),
    HeartbeatMsg(worker_id="n7", lease_id="", sent_at=2.5),  # idle ping
    NackMsg(reason="checksum", lease_id="L-1"),
    ShutdownMsg(),
    GoodbyeMsg(worker_id="n7", cells_run=9),
    CompletionMsg(
        worker_id="n7",
        lease_id="L-1",
        digest="ab" * 20,
        key="xz|coffeelake|aqua|trh128",
        attempt=2,
        epoch=1,
        record={
            "status": "ok",
            "activations": 123456,
            "bitflip_rate": 0.12345678901234567,  # full double precision
            "nested": {"swaps": 7, "values": [1.5, -0.0, 3e-300]},
        },
        duration_s=0.875,
        telemetry={"counters": {"sim.windows|mode=static": 4}},
    ),
]


class TestCodec:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_messages_round_trip_exactly(self, message):
        assert decode_payload(encode_payload(message)) == message

    def test_floats_survive_bit_for_bit(self):
        """The identity tests lean on this: JSON repr round-trips doubles."""
        values = [0.1 + 0.2, 1 / 3, 2**-1074, 1.7976931348623157e308, -0.0]
        restored = from_wire(to_wire(values))
        assert [v.hex() for v in restored] == [v.hex() for v in values]

    def test_non_message_payload_rejected(self):
        with pytest.raises(FrameError):
            encode_payload({"just": "a dict"})
        frame_of_dict = encode_frame(b'{"just": "a dict"}')
        sock_a, sock_b = _framed_pair()
        try:
            sock_a.send_bytes(frame_of_dict)
            with pytest.raises(FrameError, match="non-message"):
                sock_b.recv()
        finally:
            sock_a.close()
            sock_b.close()

    def test_unknown_tag_and_bad_fields_raise_frame_error(self):
        with pytest.raises(FrameError, match="unknown wire dataclass"):
            from_wire({"__dc__": "EvilType", "fields": {}})
        with pytest.raises(FrameError, match="cannot rebuild"):
            from_wire({"__dc__": "HelloMsg", "fields": {"nope": 1}})

    def test_unencodable_value_raises_frame_error(self):
        with pytest.raises(FrameError, match="not wire-encodable"):
            to_wire(object())


class TestFraming:
    def test_frame_layout(self):
        payload = encode_payload(ShutdownMsg())
        frame = encode_frame(payload)
        magic, length, crc = HEADER.unpack(frame[: HEADER.size])
        assert magic == MAGIC and length == len(payload)
        assert frame[HEADER.size :] == payload

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameError, match="ceiling"):
            encode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_corrupt_frame_is_deterministic_and_framed(self):
        frame = encode_message(HelloMsg(name="w"))
        bad = corrupt_frame(frame, seed=7)
        assert bad == corrupt_frame(frame, seed=7)
        assert bad != frame and len(bad) == len(frame)
        assert bad[: HEADER.size] == frame[: HEADER.size]  # header intact

    def test_truncate_frame_is_deterministic_strict_prefix(self):
        frame = encode_message(HelloMsg(name="w"))
        torn = truncate_frame(frame, seed=3)
        assert torn == truncate_frame(frame, seed=3)
        assert 1 <= len(torn) < len(frame)
        assert frame.startswith(torn)


def _framed_pair(frame_timeout_s: float = 0.4):
    a, b = socket.socketpair()
    return (
        FramedSocket(a, frame_timeout_s=frame_timeout_s),
        FramedSocket(b, frame_timeout_s=frame_timeout_s),
    )


class TestFramedSocket:
    """Receiver-side fault classification over a real socketpair."""

    def setup_method(self):
        self.tx, self.rx = _framed_pair()

    def teardown_method(self):
        self.tx.close()
        self.rx.close()

    def test_clean_send_and_receive(self):
        for message in MESSAGES:
            self.tx.send(message)
        for message in MESSAGES:
            assert self.rx.recv() == message

    def test_idle_timeout_returns_none(self):
        assert self.rx.recv() is None  # no frame started: benign

    def test_corrupt_frame_raises_frame_error_stream_survives(self):
        frame = encode_message(HelloMsg(name="w"))
        self.tx.send_bytes(corrupt_frame(frame, seed=1))
        with pytest.raises(FrameError) as exc_info:
            self.rx.recv()
        assert exc_info.value.context["kind"] == "checksum"
        # The recoverable half of the envelope: the very next frame on
        # the same connection decodes fine.
        self.tx.send(GoodbyeMsg(worker_id="w"))
        assert self.rx.recv() == GoodbyeMsg(worker_id="w")

    def test_truncated_frame_then_close_is_connection_lost(self):
        frame = encode_message(HelloMsg(name="w"))
        self.tx.send_bytes(truncate_frame(frame, seed=1))
        self.tx.close()
        with pytest.raises(ConnectionLostError):
            self.rx.recv()

    def test_stalled_mid_frame_is_connection_lost(self):
        frame = encode_message(HelloMsg(name="w"))
        self.tx.send_bytes(frame[: HEADER.size + 2])  # starts, never finishes
        with pytest.raises(ConnectionLostError) as exc_info:
            self.rx.recv()
        assert exc_info.value.context["kind"] == "stalled"

    def test_eof_is_connection_lost(self):
        self.tx.close()
        with pytest.raises(ConnectionLostError) as exc_info:
            self.rx.recv()
        assert exc_info.value.context["kind"] in ("eof", "socket")

    def test_bad_magic_is_connection_lost(self):
        payload = encode_payload(ShutdownMsg())
        frame = HEADER.pack(b"EVIL", len(payload), 0) + payload
        self.tx.send_bytes(frame)
        with pytest.raises(ConnectionLostError) as exc_info:
            self.rx.recv()
        assert exc_info.value.context["kind"] == "bad-magic"

    def test_oversized_length_is_connection_lost(self):
        self.tx.send_bytes(HEADER.pack(MAGIC, MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(ConnectionLostError) as exc_info:
            self.rx.recv()
        assert exc_info.value.context["kind"] == "oversized"

    def test_concurrent_senders_never_interleave_frames(self):
        messages = [
            HeartbeatMsg(worker_id=f"w{i}", lease_id="", sent_at=float(i))
            for i in range(40)
        ]
        threads = [
            threading.Thread(target=self.tx.send, args=(m,)) for m in messages
        ]
        for thread in threads:
            thread.start()
        received = [self.rx.recv() for _ in messages]
        for thread in threads:
            thread.join()
        assert sorted(m.worker_id for m in received) == sorted(
            m.worker_id for m in messages
        )

    def test_transport_errors_share_a_base(self):
        assert issubclass(FrameError, TransportError)
        assert issubclass(ConnectionLostError, TransportError)


class TestParseAddress:
    def test_round_trip(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address("host.example:0") == ("host.example", 0)

    @pytest.mark.parametrize("bad", ["nohost", ":9000", "host:", "host:abc"])
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)
