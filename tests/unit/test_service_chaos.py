"""Unit tests: chaos-harness determinism, the completion gate, journal tearing."""

import json

import pytest

from repro.resilience.journal import CheckpointJournal
from repro.service.chaos import (
    ChaosEngine,
    ChaosSpec,
    CompletionGate,
    planned_faults,
    planned_wire_faults,
    truncate_journal_tail,
)

KEYS = [f"wl{i}|map|scheme|trh128" for i in range(40)]


class TestChaosSpec:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill_before_frac=0.7, kill_after_frac=0.4)
        with pytest.raises(ValueError):
            ChaosSpec(hang_frac=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(duplicate_frac=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(reorder_every=-1)


class TestChaosEngine:
    def test_decisions_are_deterministic(self):
        spec = ChaosSpec(seed=3, kill_before_frac=0.2, hang_frac=0.2, duplicate_frac=0.3)
        a = ChaosEngine(spec)
        b = ChaosEngine(ChaosSpec(seed=3, kill_before_frac=0.2, hang_frac=0.2, duplicate_frac=0.3))
        for key in KEYS:
            assert a.decide(key, 1) == b.decide(key, 1)

    def test_seed_changes_schedule(self):
        kwargs = dict(kill_before_frac=0.3, duplicate_frac=0.3)
        plan_a = planned_faults(ChaosSpec(seed=1, **kwargs), KEYS)
        plan_b = planned_faults(ChaosSpec(seed=2, **kwargs), KEYS)
        assert plan_a != plan_b

    def test_retries_always_run_clean(self):
        """Chaos fires only on attempt 1 -- the convergence guarantee."""
        spec = ChaosSpec(seed=5, kill_before_frac=0.5, kill_after_frac=0.3, hang_frac=0.2, duplicate_frac=1.0)
        engine = ChaosEngine(spec)
        for key in KEYS:
            for attempt in (2, 3, 7):
                assert engine.decide(key, attempt).benign

    def test_fractions_partition_priority_order(self):
        spec = ChaosSpec(seed=9, kill_before_frac=0.25, kill_after_frac=0.25, hang_frac=0.25, hang_s=2.0)
        actions = [ChaosEngine(spec).decide(key, 1).action for key in KEYS]
        seen = set(actions)
        assert seen <= {"kill-before", "kill-after", "hang", "none"}
        assert len(seen) >= 3  # 40 draws at 25% each: all kinds appear
        for key in KEYS:
            decision = ChaosEngine(spec).decide(key, 1)
            assert decision.hang_s == (2.0 if decision.action == "hang" else 0.0)

    def test_zero_spec_is_benign(self):
        engine = ChaosEngine(ChaosSpec(seed=4))
        assert all(engine.decide(key, 1).benign for key in KEYS)

    def test_planned_faults_matches_engine(self):
        spec = ChaosSpec(seed=6, kill_before_frac=0.3, duplicate_frac=0.2)
        plan = dict(planned_faults(spec, KEYS))
        engine = ChaosEngine(spec)
        for key in KEYS:
            decision = engine.decide(key, 1)
            if decision.benign:
                assert key not in plan
            else:
                assert plan[key] == decision


WIRE_SPEC = ChaosSpec(
    seed=11,
    wire_drop_frac=0.2,
    wire_corrupt_frac=0.2,
    wire_truncate_frac=0.15,
    wire_conn_drop_frac=0.2,
    wire_delay_frac=0.2,
    wire_delay_s=0.25,
    wire_duplicate_frac=0.2,
)


class TestWireChaos:
    def test_wire_fractions_validated(self):
        with pytest.raises(ValueError, match="frame-fate"):
            ChaosSpec(wire_drop_frac=0.5, wire_corrupt_frac=0.4, wire_truncate_frac=0.2)
        with pytest.raises(ValueError):
            ChaosSpec(wire_conn_drop_frac=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(wire_delay_s=-0.1)

    def test_has_wire_faults_flag(self):
        assert not ChaosSpec(kill_before_frac=0.5).has_wire_faults
        assert ChaosSpec(wire_corrupt_frac=0.1).has_wire_faults
        assert ChaosSpec(wire_conn_drop_frac=0.1).has_wire_faults

    def test_decisions_are_deterministic(self):
        a, b = ChaosEngine(WIRE_SPEC), ChaosEngine(WIRE_SPEC)
        for key in KEYS:
            assert a.decide_wire(key, 1) == b.decide_wire(key, 1)

    def test_retries_always_ship_clean_frames(self):
        """Wire chaos fires only on attempt 1 -- the convergence guarantee."""
        engine = ChaosEngine(WIRE_SPEC)
        for key in KEYS:
            for attempt in (2, 3, 7):
                assert engine.decide_wire(key, attempt).benign

    def test_fates_partition_and_decorrelate_from_process_faults(self):
        spec = ChaosSpec(
            seed=11,
            kill_before_frac=0.3,
            wire_drop_frac=0.25,
            wire_corrupt_frac=0.25,
            wire_truncate_frac=0.25,
        )
        engine = ChaosEngine(spec)
        fates = {engine.decide_wire(key, 1).fate for key in KEYS}
        assert fates == {"drop", "corrupt", "truncate", "none"}
        # Wire and process draws use distinct labels: the same seed must
        # not make every killed cell also lose its frame (or vice versa).
        paired = [
            (engine.decide(key, 1).action, engine.decide_wire(key, 1).fate)
            for key in KEYS
        ]
        killed = [fate for action, fate in paired if action == "kill-before"]
        assert len(set(killed)) > 1

    def test_truncate_implies_connection_drop_conn_drop_needs_clean_frame(self):
        engine = ChaosEngine(WIRE_SPEC)
        decisions = [engine.decide_wire(key, 1) for key in KEYS]
        for decision in decisions:
            if decision.fate == "truncate":
                assert decision.drops_connection and not decision.conn_drop
            if decision.conn_drop:
                # A corrupted frame awaiting a nacked resend must not have
                # its connection yanked: conn_drop pairs only with a frame
                # that either arrived clean or vanished entirely.
                assert decision.fate in ("none", "drop")
        assert any(d.drops_connection for d in decisions)

    def test_zero_wire_spec_is_benign(self):
        engine = ChaosEngine(ChaosSpec(seed=11, kill_before_frac=0.5))
        assert all(engine.decide_wire(key, 1).benign for key in KEYS)

    def test_planned_wire_faults_matches_engine(self):
        plan = dict(planned_wire_faults(WIRE_SPEC, KEYS))
        engine = ChaosEngine(WIRE_SPEC)
        for key in KEYS:
            decision = engine.decide_wire(key, 1)
            if decision.benign:
                assert key not in plan
            else:
                assert plan[key] == decision

    def test_delay_only_when_drawn(self):
        engine = ChaosEngine(WIRE_SPEC)
        delays = {engine.decide_wire(key, 1).delay_s for key in KEYS}
        assert delays == {0.0, WIRE_SPEC.wire_delay_s}


class TestCompletionGate:
    def make(self, every, now=None):
        clock = now if now is not None else (lambda: 0.0)
        return CompletionGate(ChaosSpec(reorder_every=every, max_hold_s=10.0), clock=clock)

    def test_disabled_gate_passes_through(self):
        gate = self.make(0)
        assert gate.intercept("m1") == ["m1"]
        assert gate.flush() == []

    def test_every_kth_held_and_reordered(self):
        gate = self.make(3)
        assert gate.intercept("m1") == ["m1"]
        assert gate.intercept("m2") == ["m2"]
        assert gate.intercept("m3") == []  # held
        assert gate.intercept("m4") == ["m4", "m3"]  # delivered late
        assert gate.intercept("m5") == ["m5"]
        assert gate.intercept("m6") == []
        assert gate.flush() == ["m6"]

    def test_flush_due_releases_after_max_hold(self):
        now = {"t": 0.0}
        gate = CompletionGate(
            ChaosSpec(reorder_every=1, max_hold_s=0.5), clock=lambda: now["t"]
        )
        assert gate.intercept("m1") == []
        assert gate.flush_due() == []  # not yet due
        now["t"] = 1.0
        assert gate.flush_due() == ["m1"]
        assert gate.flush_due() == []


class TestJournalTruncation:
    def fill(self, tmp_path, cells=3):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        for i in range(cells):
            journal.append(f"cell-{i}", {"value": i, "padding": "x" * 30})
        return path

    def test_tear_is_seeded_and_loadable(self, tmp_path):
        path_a, path_b = self.fill(tmp_path / "a"), self.fill(tmp_path / "b")
        cut_a = truncate_journal_tail(path_a, seed=1)
        cut_b = truncate_journal_tail(path_b, seed=1)
        assert cut_a == cut_b > 0  # same seed, same file name -> same tear
        journal = CheckpointJournal(path_a)
        # The torn final record is skipped, everything before survives.
        assert journal.completed_keys() == {"cell-0", "cell-1"}
        assert journal.skipped_lines == 1

    def test_tear_never_consumes_whole_line(self, tmp_path):
        for seed in range(12):
            path = self.fill(tmp_path / f"s{seed}", cells=2)
            truncate_journal_tail(path, seed=seed)
            lines = path.read_text().splitlines()
            assert len(lines) == 2  # damaged, not deleted
            json.loads(lines[0])  # first record intact
            with pytest.raises(json.JSONDecodeError):
                json.loads(lines[1])

    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            truncate_journal_tail(path)
