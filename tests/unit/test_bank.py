"""Unit tests for repro.dram.bank."""

import pytest

from repro.dram.bank import AccessKind, Bank
from repro.dram.config import DRAMTiming


@pytest.fixture()
def bank():
    return Bank(DRAMTiming())


class TestClassification:
    def test_first_access_is_closed(self, bank):
        assert bank.classify(5) is AccessKind.CLOSED

    def test_same_row_is_hit(self, bank):
        bank.access(5, 0.0)
        assert bank.classify(5) is AccessKind.HIT

    def test_other_row_is_conflict(self, bank):
        bank.access(5, 0.0)
        assert bank.classify(6) is AccessKind.CONFLICT


class TestAccessTiming:
    def test_first_access_activates(self, bank):
        completion, activated = bank.access(5, 0.0)
        assert activated
        assert completion == pytest.approx(bank.timing.row_closed_latency)

    def test_hit_is_faster(self, bank):
        first, _ = bank.access(5, 0.0)
        second, activated = bank.access(5, first)
        assert not activated
        assert second - first == pytest.approx(bank.timing.row_hit_latency)

    def test_conflict_pays_precharge(self, bank):
        first, _ = bank.access(5, 0.0)
        second, activated = bank.access(6, first)
        assert activated
        assert second - first >= bank.timing.row_conflict_latency - 1e-12

    def test_trc_enforced_between_activations(self, bank):
        t1, _ = bank.access(1, 0.0)
        t2, _ = bank.access(2, t1)
        # Second ACT cannot start before last ACT start + tRC.
        assert t2 - 0.0 >= bank.timing.t_rc

    def test_activation_count(self, bank):
        bank.access(1, 0.0)
        bank.access(1, 1.0)
        bank.access(2, 2.0)
        assert bank.state.activations == 2


class TestOpenAdaptiveLimit:
    def test_row_closes_after_max_hits(self, bank):
        now = 0.0
        activations = 0
        for _ in range(33):
            now, activated = bank.access(7, now + 1e-6, max_hits=16)
            activations += activated
        # 33 accesses with a 16-access budget: ACTs at access 1, 17, 33.
        assert activations == 3

    def test_unlimited_when_none(self, bank):
        now = 0.0
        activations = 0
        for _ in range(100):
            now, activated = bank.access(7, now + 1e-6)
            activations += activated
        assert activations == 1


class TestPrecharge:
    def test_precharge_closes_row(self, bank):
        bank.access(3, 0.0)
        bank.precharge(1.0)
        assert bank.classify(3) is AccessKind.CLOSED

    def test_precharge_idempotent(self, bank):
        bank.precharge(0.0)
        assert bank.state.open_row is None
