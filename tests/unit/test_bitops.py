"""Unit tests for repro.utils.bitops."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bit_length_for,
    extract_bits,
    insert_bits,
    is_power_of_two,
    mask,
    parity,
    reverse_bits,
    rotate_left,
    rotate_right,
)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(7) == 127

    def test_mask_64(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_bit_length_for(self):
        assert bit_length_for(1) == 0
        assert bit_length_for(128) == 7
        assert bit_length_for(1 << 17) == 17

    def test_bit_length_rejects_non_power(self):
        with pytest.raises(ValueError):
            bit_length_for(100)


class TestExtractInsert:
    def test_extract(self):
        assert extract_bits(0b1011_0110, 1, 3) == 0b011
        assert extract_bits(0xFF, 4, 4) == 0xF

    def test_extract_zero_width(self):
        assert extract_bits(0xFF, 2, 0) == 0

    def test_insert(self):
        assert insert_bits(0, 4, 4, 0xA) == 0xA0
        assert insert_bits(0xFF, 0, 4, 0) == 0xF0

    def test_roundtrip(self):
        value = 0b1101_0010_1110
        field = extract_bits(value, 3, 5)
        assert insert_bits(value, 3, 5, field) == value

    def test_extract_array(self):
        arr = np.array([0b100, 0b110, 0b111], dtype=np.uint64)
        out = extract_bits(arr, 1, 2)
        assert out.tolist() == [0b10, 0b11, 0b11]

    def test_insert_array(self):
        arr = np.zeros(3, dtype=np.uint64)
        out = insert_bits(arr, 2, 2, np.array([1, 2, 3], dtype=np.uint64))
        assert out.tolist() == [4, 8, 12]

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 2)


class TestRotate:
    def test_rotate_left_basic(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right_inverse(self):
        for value in range(16):
            assert rotate_right(rotate_left(value, 3, 4), 3, 4) == value

    def test_rotate_array(self):
        arr = np.array([0b1000], dtype=np.uint64)
        assert rotate_left(arr, 1, 4).tolist() == [1]

    def test_rotate_full_width_identity(self):
        assert rotate_left(0b1010, 4, 4) == 0b1010


class TestReverseAndParity:
    def test_reverse(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b1101, 4) == 0b1011

    def test_reverse_involution(self):
        for value in range(64):
            assert reverse_bits(reverse_bits(value, 6), 6) == value

    def test_parity_scalar(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b11) == 0

    def test_parity_array(self):
        arr = np.array([0, 1, 3, 7], dtype=np.uint64)
        assert parity(arr).tolist() == [0, 1, 0, 1]
