"""Unit tests for the analysis package (binomial model, hot rows)."""

import numpy as np
import pytest

from repro.analysis.binomial import (
    encrypted_hot_row_expectation,
    expected_rows_with_k_lines,
    illustrative_model,
)
from repro.analysis.hotrows import hot_row_summary, line_contribution_table
from repro.dram.fast_model import analyze_trace


class TestBinomialModel:
    def test_paper_line_populations(self):
        # Section 4.1: 64K lines over 1M rows of 64 lines: 61.5K rows
        # with 1 line, 1.9K with 2, ~40 with 3.
        one = expected_rows_with_k_lines(65536, 1 << 20, 64, 1)
        two = expected_rows_with_k_lines(65536, 1 << 20, 64, 2)
        three = expected_rows_with_k_lines(65536, 1 << 20, 64, 3)
        assert one == pytest.approx(61_500, rel=0.05)
        assert two == pytest.approx(1_900, rel=0.10)
        assert three == pytest.approx(40, rel=0.20)

    def test_populations_sum_to_footprint_lines(self):
        total = sum(
            k * expected_rows_with_k_lines(65536, 1 << 20, 64, k) for k in range(1, 8)
        )
        assert total == pytest.approx(65536, rel=0.01)

    def test_random_kernel_expectation_below_one(self):
        # Paper: ~0.4 expected hot rows for the random kernel.
        expectation = encrypted_hot_row_expectation(65536, 1 << 20, 64, 1_000_000)
        assert 0.05 < expectation < 1.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            expected_rows_with_k_lines(100, 100, 64, -1)

    def test_illustrative_model_matches_figure4c(self):
        result = illustrative_model()
        assert result.baseline["stream"] == 0
        assert result.baseline["stride"] == 1024
        assert result.baseline["random"] == 1024
        # Encrypted: a row needs 5+ footprint lines to reach 64 acts;
        # the expected number of such rows is ~0.008 ("no hot rows").
        assert result.encrypted["stream"] < 0.05
        assert result.encrypted["stride"] < 0.05
        assert result.encrypted["random"] < 1.0


class TestHotRowAnalysis:
    def _stats(self):
        # Two rows: row 0 hot via many distinct cols, row 1 cold.
        n_hot = 70
        banks = np.zeros(n_hot + 2, dtype=np.uint64)
        rows = np.array([0, 1] * ((n_hot + 2) // 2), dtype=np.uint64)[: n_hot + 2]
        cols = np.arange(n_hot + 2, dtype=np.uint64) % 40
        return analyze_trace(
            banks, rows, rows_per_bank=100, col=cols, keep_detail=True, max_hits=16
        )

    def test_summary(self):
        stats = self._stats()
        summary = hot_row_summary(stats)
        assert summary.unique_rows == 2
        assert summary.activations == stats.n_activations

    def test_line_contribution_requires_detail(self):
        stats = analyze_trace(
            np.zeros(3, dtype=np.uint64),
            np.zeros(3, dtype=np.uint64),
            rows_per_bank=10,
        )
        with pytest.raises(ValueError):
            line_contribution_table(stats)

    def test_line_contribution_buckets(self):
        stats = self._stats()
        table = line_contribution_table(stats, threshold=30, lines_per_row=128)
        assert table.hot_rows >= 1
        assert sum(table.bucket_fractions.values()) == pytest.approx(1.0)
        assert 1 <= table.average_lines <= 128

    def test_no_hot_rows(self):
        stats = analyze_trace(
            np.zeros(4, dtype=np.uint64),
            np.array([1, 2, 3, 4], dtype=np.uint64),
            rows_per_bank=10,
            col=np.zeros(4, dtype=np.uint64),
            keep_detail=True,
        )
        table = line_contribution_table(stats, threshold=64)
        assert table.hot_rows == 0
        assert table.average_lines == 0.0
