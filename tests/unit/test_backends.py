"""Kernel-backend registry: resolution, fallback, and plumbing.

Covers :mod:`repro.perf.backends` itself (kwarg > env > default
resolution, unknown-name handling, the numba->numpy graceful fallback
and its one-time warning, registry introspection) and the threading of
``backend=`` through ``Simulator``, ``Campaign``, ``get_simulator``,
and the campaign spec format.
"""

import warnings

import numpy as np
import pytest

from repro.dram.config import DRAMConfig
from repro.perf import backends
from repro.perf.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    KERNEL_BACKEND_ENV,
    KERNELS,
    BackendFallbackWarning,
    available_backends,
    get_kernel,
    numba_available,
    registered_kernels,
    resolve_backend,
    validate_backend,
)

SMALL = DRAMConfig(banks=4, rows_per_bank=256, row_bytes=1024)


@pytest.fixture(autouse=True)
def _clean_probe(monkeypatch):
    """Each test starts with an unset env var and a fresh warn latch."""
    monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
    backends._reset_probe_for_tests()
    yield
    backends._reset_probe_for_tests()


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
def test_default_resolution_is_numpy():
    assert resolve_backend(None) == DEFAULT_BACKEND == "numpy"


def test_explicit_kwarg_wins_over_env(monkeypatch):
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
    assert resolve_backend("reference") == "reference"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "reference")
    assert resolve_backend(None) == "reference"
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "  NumPy ")
    assert resolve_backend(None) == "numpy"


def test_unknown_kwarg_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("cuda")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        validate_backend("fortran")


def test_unknown_env_warns_and_uses_default(monkeypatch):
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "warp-drive")
    with pytest.warns(BackendFallbackWarning, match="names no known backend"):
        assert resolve_backend(None) == DEFAULT_BACKEND


def test_numba_request_without_numba_falls_back_once(monkeypatch):
    """Requesting numba on a numba-less interpreter degrades to numpy
    and warns exactly once per process (not once per call)."""
    monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", False)
    with pytest.warns(BackendFallbackWarning, match="falling back to numpy"):
        assert resolve_backend("numba") == "numpy"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("numba") == "numpy"  # latched: no 2nd warning


def test_numba_env_without_numba_falls_back(monkeypatch):
    monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", False)
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
    with pytest.warns(BackendFallbackWarning):
        assert resolve_backend(None) == "numpy"


def test_numba_resolves_when_available(monkeypatch):
    monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", True)
    assert resolve_backend("numba") == "numba"
    assert available_backends() == BACKENDS


def test_available_backends_without_numba(monkeypatch):
    monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", False)
    assert available_backends() == ("reference", "numpy")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_every_kernel_has_reference_or_numpy_entries():
    table = registered_kernels()
    assert set(table) == set(KERNELS)
    for kernel, tiers in table.items():
        assert "numpy" in tiers, kernel
    # The pre-optimization references are kept registered for the three
    # originally-optimized kernels (chunk_merge never had a loop tier).
    for kernel in ("translate_trace", "analyze_trace", "remap_steps"):
        assert "reference" in table[kernel]
    if not numba_available():
        for tiers in table.values():
            assert "numba" not in tiers


def test_get_kernel_runs_the_analysis_entry():
    fn = get_kernel("analyze_trace", "numpy")
    banks = np.zeros(8, dtype=np.uint64)
    rows = np.arange(8, dtype=np.uint64) % 2
    stats = fn(banks, rows, rows_per_bank=64, max_hits=16)
    ref = get_kernel("analyze_trace", "reference")(
        banks, rows, rows_per_bank=64, max_hits=16
    )
    assert stats.n_activations == ref.n_activations
    assert np.array_equal(stats.row_ids, ref.row_ids)


def test_get_kernel_unknown_names():
    with pytest.raises(ValueError):
        get_kernel("sort_everything", "numpy")
    with pytest.raises(ValueError):
        get_kernel("analyze_trace", "gpu")
    if not numba_available():
        with pytest.raises(LookupError, match="numba not installed"):
            get_kernel("analyze_trace", "numba")


# ---------------------------------------------------------------------------
# Threading through Simulator / Campaign / get_simulator
# ---------------------------------------------------------------------------
def test_simulator_resolves_backend(monkeypatch):
    from repro.perf.simulator import Simulator

    assert Simulator(SMALL).backend == "numpy"
    assert Simulator(SMALL, backend="reference").backend == "reference"
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "reference")
    assert Simulator(SMALL).backend == "reference"
    with pytest.raises(ValueError):
        Simulator(SMALL, backend="bogus")


def test_simulator_runs_identical_across_backends():
    """One window, every runnable backend: identical RunResult fields.

    This is the bit-identity contract that justifies sharing stats-cache
    entries across backends.
    """
    from repro.experiments.common import get_trace, make_mapping
    from repro.perf.simulator import Simulator

    trace = get_trace("stream-copy", scale=0.02)
    results = []
    for backend in available_backends():
        sim = Simulator(backend=backend)
        mapping = make_mapping("rubix-d", sim.config, remap_rate=0.01)
        results.append(sim.run(trace, mapping, scheme="aqua", t_rh=128))
    first = results[0]
    for other in results[1:]:
        assert other == first


def test_get_simulator_caches_per_backend():
    from repro.experiments.common import clear_caches, get_simulator

    clear_caches()
    try:
        ref = get_simulator(backend="reference")
        np_ = get_simulator(backend="numpy")
        assert ref is not np_
        assert ref.backend == "reference" and np_.backend == "numpy"
        assert get_simulator(backend="reference") is ref
        assert get_simulator() is np_  # default resolves to numpy
    finally:
        clear_caches()


def test_campaign_validates_and_forwards_backend():
    from repro.experiments.campaign import Campaign, MappingSpec, campaign_from_spec

    campaign = Campaign(
        workloads=["stream-copy"],
        mappings=[MappingSpec("coffeelake")],
        scale=0.02,
        backend="reference",
    )
    assert campaign.parallel_payload()["backend"] == "reference"
    with pytest.raises(ValueError, match="unknown kernel backend"):
        Campaign(
            workloads=["stream-copy"],
            mappings=[MappingSpec("coffeelake")],
            backend="bogus",
        )
    spec = {
        "workloads": ["stream-copy"],
        "mappings": ["coffeelake"],
        "backend": "reference",
    }
    assert campaign_from_spec(spec).backend == "reference"


def test_campaign_records_identical_across_backends():
    from repro.experiments.campaign import Campaign, MappingSpec

    def run(backend):
        return Campaign(
            workloads=["stream-copy"],
            mappings=[MappingSpec("rubix-d")],
            schemes=["aqua"],
            thresholds=[128],
            scale=0.02,
            backend=backend,
        ).run()

    records = {b: run(b) for b in available_backends()}
    first = next(iter(records.values()))
    assert all(r == first for r in records.values())
    assert first[0]["status"] == "ok"
