"""Unit tests: lease grant/renew/expire semantics with a fake clock."""

import pytest

from repro.service.lease import Lease, LeaseTable, lease_id_for


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table(clock):
    return LeaseTable(timeout_s=5.0, clock=clock)


class TestLeaseTable:
    def test_grant_sets_deadline(self, table, clock):
        clock.now = 100.0
        lease = table.grant("d" * 40, "cell-key", "w0", attempt=1, epoch=0)
        assert lease.active
        assert lease.granted_at == 100.0 and lease.deadline == 105.0
        assert lease.lease_id == lease_id_for("d" * 40, 1, 0)
        assert table.get(lease.lease_id) is lease
        assert len(table) == 1

    def test_lease_id_is_deterministic(self):
        assert lease_id_for("abcdef123456ff", 2, 1) == "abcdef123456#a2e1"
        assert lease_id_for("abcdef123456ff", 2, 1) == lease_id_for("abcdef123456ff", 2, 1)
        assert lease_id_for("abcdef123456ff", 2, 1) != lease_id_for("abcdef123456ff", 3, 1)

    def test_renew_extends_deadline(self, table, clock):
        lease = table.grant("d", "k", "w0", 1, 0)
        clock.advance(4.0)
        assert table.renew(lease.lease_id)
        assert lease.deadline == 9.0 and lease.renewals == 1
        clock.advance(4.0)  # past the original deadline, inside the renewed one
        assert table.expire_due() == []

    def test_expiry_after_missed_heartbeats(self, table, clock):
        lease = table.grant("d", "k", "w0", 1, 0)
        clock.advance(5.1)
        expired = table.expire_due()
        assert expired == [lease] and lease.state == "expired"
        assert table.get(lease.lease_id) is None
        assert table.history == [lease]

    def test_stale_renew_refused(self, table, clock):
        """A heartbeat for an expired lease must not resurrect the claim."""
        lease = table.grant("d", "k", "w0", 1, 0)
        clock.advance(6.0)
        table.expire_due()
        assert not table.renew(lease.lease_id)
        assert not table.renew("never-granted#a1e0")
        assert lease.state == "expired"

    def test_release_is_terminal(self, table):
        lease = table.grant("d", "k", "w0", 1, 0)
        released = table.release(lease.lease_id)
        assert released is lease and lease.state == "released"
        assert table.release(lease.lease_id) is None  # idempotent
        assert table.expire(lease.lease_id) is None
        assert table.history == [lease]

    def test_for_worker(self, table):
        a = table.grant("d1", "k1", "w0", 1, 0)
        table.grant("d2", "k2", "w1", 1, 0)
        assert table.for_worker("w0") == [a]
        assert table.for_worker("w9") == []

    def test_force_expire_single_lease(self, table):
        """Channel-closed detection expires one worker's lease directly."""
        lease = table.grant("d", "k", "w0", 1, 0)
        expired = table.expire(lease.lease_id)
        assert expired is lease and lease.state == "expired"
        assert len(table) == 0

    def test_redispatch_gets_distinct_lease_id(self, table, clock):
        first = table.grant("d" * 20, "k", "w0", 1, 0)
        clock.advance(6.0)
        table.expire_due()
        second = table.grant("d" * 20, "k", "w1", 2, 1)
        assert second.lease_id != first.lease_id
        assert table.get(first.lease_id) is None
        assert table.get(second.lease_id) is second

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable(timeout_s=0)
