"""Unit tests for the vectorized trace analyzer."""

import numpy as np
import pytest

from repro.dram.fast_model import ChunkedAnalyzer, TraceStats, analyze_trace


def _analyze(banks, rows, **kwargs):
    return analyze_trace(
        np.asarray(banks, dtype=np.uint64),
        np.asarray(rows, dtype=np.uint64),
        rows_per_bank=kwargs.pop("rows_per_bank", 1024),
        **kwargs,
    )


class TestBasicCounting:
    def test_empty_trace(self):
        stats = _analyze([], [])
        assert stats.n_accesses == 0
        assert stats.n_activations == 0
        assert stats.hit_rate == 0.0

    def test_single_access(self):
        stats = _analyze([0], [5])
        assert stats.n_activations == 1
        assert stats.n_hits == 0

    def test_repeated_row_hits(self):
        stats = _analyze([0] * 10, [5] * 10)
        assert stats.n_activations == 1
        assert stats.n_hits == 9

    def test_alternating_rows_all_activate(self):
        stats = _analyze([0] * 10, [1, 2] * 5)
        assert stats.n_activations == 10

    def test_different_banks_independent(self):
        # Same row id in two banks: each bank keeps its own open row.
        stats = _analyze([0, 1, 0, 1], [7, 7, 7, 7])
        assert stats.n_activations == 2
        assert stats.n_hits == 2

    def test_interleaved_banks_preserve_runs(self):
        # Bank 0 streams row 3 while bank 1 streams row 9: no conflicts.
        banks = [0, 1] * 8
        rows = [3, 9] * 8
        stats = _analyze(banks, rows)
        assert stats.n_activations == 2
        assert stats.n_hits == 14


class TestOpenAdaptive:
    def test_budget_forces_reactivation(self):
        stats = _analyze([0] * 40, [5] * 40, max_hits=16)
        # ACT at positions 0, 16, 32.
        assert stats.n_activations == 3

    def test_open_page_unlimited(self):
        stats = _analyze([0] * 40, [5] * 40, max_hits=None)
        assert stats.n_activations == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            _analyze([0], [0], max_hits=0)


class TestPerRowHistogram:
    def test_histogram_counts(self):
        # Alternation activates on every switch; the trailing repeat of
        # row 2 is a row-buffer hit.
        banks = [0] * 7
        rows = [1, 2, 1, 2, 1, 2, 2]
        stats = _analyze(banks, rows)
        hist = dict(zip(stats.row_ids.tolist(), stats.acts_per_row.tolist()))
        assert hist[1] == 3
        assert hist[2] == 3
        assert stats.n_hits == 1

    def test_hot_rows_threshold(self):
        banks = [0] * 100
        rows = [1, 2] * 50
        stats = _analyze(banks, rows)
        assert stats.hot_rows(50) == 2
        assert stats.hot_rows(51) == 0

    def test_global_row_ids_distinct_across_banks(self):
        stats = _analyze([0, 1], [5, 5], rows_per_bank=100)
        assert set(stats.row_ids.tolist()) == {5, 105}

    def test_max_row_activations(self):
        stats = _analyze([0] * 6, [1, 2, 1, 2, 1, 1])
        # Row 1: runs 1,1,2 -> acts at transitions: positions 0,2,4 (row1) ...
        assert stats.max_row_activations() == stats.acts_per_row.max()

    def test_unique_rows_touched(self):
        stats = _analyze([0] * 4, [1, 1, 2, 3])
        assert stats.unique_rows_touched == 3


class TestDerivedMetrics:
    def test_threshold_crossings(self):
        stats = _analyze([0] * 9, [1, 2] * 4 + [1])
        # row1: 5 acts, row2: 4 acts; crossings at threshold 2: 2 + 2.
        assert stats.threshold_crossings(2) == 4

    def test_excess_activations(self):
        stats = _analyze([0] * 9, [1, 2] * 4 + [1])
        assert stats.excess_activations(4) == 1  # row1 has 5

    def test_validation(self):
        stats = _analyze([0], [0])
        with pytest.raises(ValueError):
            stats.hot_rows(0)
        with pytest.raises(ValueError):
            stats.threshold_crossings(-1)


class TestDetail:
    def test_detail_arrays(self):
        stats = analyze_trace(
            np.zeros(4, dtype=np.uint64),
            np.array([1, 1, 2, 2], dtype=np.uint64),
            rows_per_bank=10,
            col=np.array([7, 8, 9, 9], dtype=np.uint64),
            keep_detail=True,
        )
        assert stats.act_rows.tolist() == [1, 2]
        assert stats.act_cols.tolist() == [7, 9]


class TestMerge:
    def test_merge_sums_histograms(self):
        a = _analyze([0] * 4, [1, 1, 2, 2])
        b = _analyze([0] * 2, [1, 3])
        merged = TraceStats.merge([a, b])
        hist = dict(zip(merged.row_ids.tolist(), merged.acts_per_row.tolist()))
        assert hist[1] == 2  # 1 act in each part
        assert hist[2] == 1
        assert hist[3] == 1
        assert merged.n_accesses == 6

    def test_merge_empty(self):
        merged = TraceStats.merge([])
        assert merged.n_accesses == 0

    def test_merge_keeps_detail_when_all_parts_have_it(self):
        a = _analyze([0, 0], [1, 2], col=np.array([3, 4], dtype=np.uint64), keep_detail=True)
        b = _analyze([0, 0], [5, 6], col=np.array([7, 8], dtype=np.uint64), keep_detail=True)
        merged = TraceStats.merge([a, b])
        assert merged.act_rows.tolist() == [1, 2, 5, 6]
        assert merged.act_cols.tolist() == [3, 4, 7, 8]

    def test_merge_rows_only_parts_keep_rows(self):
        # No part ever had columns: act_rows survive, act_cols stay None.
        a = _analyze([0, 0], [1, 2], keep_detail=True)
        b = _analyze([0, 0], [5, 6], keep_detail=True)
        merged = TraceStats.merge([a, b])
        assert merged.act_rows.tolist() == [1, 2, 5, 6]
        assert merged.act_cols is None

    def test_merge_mixed_detail_drops_both_arrays(self):
        # Regression: one part carries (rows, cols), the other rows only.
        # The keep-detail decision must be atomic -- the old code kept a
        # concatenated act_rows while dropping act_cols, leaving the two
        # arrays inconsistent (rows without their columns).
        full = _analyze(
            [0, 0], [1, 2], col=np.array([3, 4], dtype=np.uint64), keep_detail=True
        )
        rows_only = _analyze([0, 0], [5, 6], keep_detail=True)
        assert full.act_cols is not None and rows_only.act_cols is None
        for parts in ([full, rows_only], [rows_only, full]):
            merged = TraceStats.merge(parts)
            assert merged.act_rows is None
            assert merged.act_cols is None
            assert merged.n_accesses == 4

    def test_merge_missing_rows_drops_detail(self):
        with_detail = _analyze([0, 0], [1, 2], keep_detail=True)
        without = _analyze([0, 0], [5, 6])
        merged = TraceStats.merge([with_detail, without])
        assert merged.act_rows is None
        assert merged.act_cols is None


class TestChunkedAnalyzer:
    def test_chunked_equals_single_pass_modulo_boundaries(self):
        rng = np.random.default_rng(0)
        banks = rng.integers(0, 4, 10_000).astype(np.uint64)
        rows = rng.integers(0, 50, 10_000).astype(np.uint64)
        whole = analyze_trace(banks, rows, rows_per_bank=1024)
        chunked = ChunkedAnalyzer(rows_per_bank=1024)
        for start in range(0, 10_000, 1000):
            chunked.feed(banks[start : start + 1000], rows[start : start + 1000])
        merged = chunked.result()
        assert merged.n_accesses == whole.n_accesses
        # Boundary resets can only add activations, and at most one per
        # bank per boundary.
        assert whole.n_activations <= merged.n_activations
        assert merged.n_activations <= whole.n_activations + 4 * 10
        assert merged.unique_rows_touched == whole.unique_rows_touched

    @pytest.mark.parametrize("chunk_size", [1_000, 4_096, 9_999, 50_000])
    def test_chunked_equals_one_shot_within_tolerance(self, chunk_size):
        # A realistic window: two hammered aggressor rows (alternating, so
        # every hammer access is an activation) interleaved with a large
        # random background.  Chunk-boundary row-buffer resets may perturb
        # the activation count slightly, but derived hot-row counts and
        # the unique-row set must come out exactly the same regardless of
        # chunk size.
        rng = np.random.default_rng(42)
        n = 100_000
        banks = rng.integers(0, 8, n).astype(np.uint64)
        rows = rng.integers(0, 4_000, n).astype(np.uint64)
        # Hammer bank 0 rows {1, 2} alternately at every 100th position.
        hammer_idx = np.arange(0, n, 100)
        banks[hammer_idx] = 0
        rows[hammer_idx] = np.where(np.arange(len(hammer_idx)) % 2 == 0, 1, 2)

        whole = analyze_trace(banks, rows, rows_per_bank=8192)
        chunked = ChunkedAnalyzer(rows_per_bank=8192)
        for start in range(0, n, chunk_size):
            chunked.feed(banks[start : start + chunk_size], rows[start : start + chunk_size])
        merged = chunked.result()

        assert merged.n_accesses == whole.n_accesses
        # Activations agree to <0.1%: boundary resets can only add, at
        # most one per bank per boundary, and only when the first access
        # of a chunk would have hit the previously-open row.
        assert whole.n_activations <= merged.n_activations
        assert merged.n_activations - whole.n_activations < 0.001 * whole.n_activations
        # Derived metrics are exact.
        for threshold in (64, 256, 500):
            assert merged.hot_rows(threshold) == whole.hot_rows(threshold)
        assert whole.hot_rows(256) == 2  # exactly the planted aggressors
        assert merged.unique_rows_touched == whole.unique_rows_touched
        assert merged.n_hits + merged.n_activations == merged.n_accesses
