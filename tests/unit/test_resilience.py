"""Unit tests: error taxonomy, retry/backoff determinism, journal."""

import json

import pytest

from repro.errors import (
    BudgetExceededError,
    CellExecutionError,
    CellTimeoutError,
    FaultInjectedError,
    InfrastructureError,
    JournalError,
    MappingConfigError,
    ReproError,
    SchemeConfigError,
    ServiceSaturated,
    ServiceStopped,
    TraceFormatError,
    TransientError,
    WorkerLostError,
    WorkloadConfigError,
    error_record,
    is_infrastructure_error,
)
from repro.resilience.executor import CellBudget, ResilientExecutor, RetryPolicy
from repro.resilience.journal import CheckpointJournal


class TestErrorTaxonomy:
    def test_config_errors_are_value_errors(self):
        # Backward compatibility: pre-taxonomy callers catch ValueError.
        for cls in (TraceFormatError, MappingConfigError, WorkloadConfigError, SchemeConfigError):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, ValueError)

    def test_execution_errors_are_repro_errors(self):
        for cls in (CellExecutionError, BudgetExceededError, TransientError, JournalError, FaultInjectedError):
            assert issubclass(cls, ReproError)
        assert issubclass(CellTimeoutError, BudgetExceededError)

    def test_context_in_message_and_record(self):
        error = MappingConfigError("unknown mapping 'bogus'", mapping="bogus")
        assert "bogus" in str(error)
        record = error_record(error)
        assert record["error_type"] == "MappingConfigError"
        assert record["error_context"] == {"mapping": "bogus"}

    def test_error_record_for_plain_exceptions(self):
        record = error_record(KeyError("boom"))
        assert record["error_type"] == "KeyError"
        assert "error_context" not in record

    def test_infrastructure_error_classification(self):
        from concurrent.futures.process import BrokenProcessPool

        assert issubclass(WorkerLostError, InfrastructureError)
        for cls in (InfrastructureError, WorkerLostError, ServiceSaturated, ServiceStopped):
            assert issubclass(cls, ReproError)
        for error in (
            InfrastructureError("substrate"),
            WorkerLostError("lease expired"),
            OSError("broken pipe"),
            EOFError(),
            BrokenProcessPool("worker died"),
        ):
            assert is_infrastructure_error(error)
        # Simulation-level failures must never be classed as infrastructure:
        # retrying them on a fresh worker cannot change the outcome.
        for error in (
            ValueError("bad config"),
            TransientError("blip"),
            FaultInjectedError("corrupt"),
            KeyError("missing"),
        ):
            assert not is_infrastructure_error(error)


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s("cell-a", 1) == policy.delay_s("cell-a", 1)
        assert RetryPolicy(seed=7).delay_s("cell-a", 2) == policy.delay_s("cell-a", 2)

    def test_jitter_decorrelates_cells_and_attempts(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s("cell-a", 1) != policy.delay_s("cell-b", 1)
        assert RetryPolicy(seed=8).delay_s("cell-a", 1) != policy.delay_s("cell-a", 1)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25)
        d1, d2, d3 = (policy.delay_s("c", a) for a in (1, 2, 3))
        # With jitter <= 25%, consecutive delays cannot overlap.
        assert 0.1 <= d1 <= 0.125
        assert 0.2 <= d2 <= 0.25
        assert 0.4 <= d3 <= 0.5

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class _Flaky:
    """Fails with the given errors, then returns ``value``."""

    def __init__(self, errors, value="done"):
        self.errors = list(errors)
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return self.value


def _executor(**kwargs):
    slept = []
    kwargs.setdefault("sleep", slept.append)
    return ResilientExecutor(**kwargs), slept


class TestResilientExecutor:
    def test_transient_failures_retry_then_succeed(self):
        executor, slept = _executor(retry=RetryPolicy(max_attempts=3, seed=11))
        fn = _Flaky([TransientError("blip"), TransientError("blip")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "ok" and outcome.value == "done"
        assert outcome.attempts == 3 and fn.calls == 3
        policy = RetryPolicy(max_attempts=3, seed=11)
        assert slept == [policy.delay_s("cell", 1), policy.delay_s("cell", 2)]

    def test_exhausted_retries_become_error_outcome(self):
        executor, _ = _executor(retry=RetryPolicy(max_attempts=2))
        outcome = executor.execute("cell", _Flaky([TransientError("a"), TransientError("b")]))
        assert outcome.status == "error" and not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_fields()["error_type"] == "TransientError"

    def test_non_retryable_error_fails_immediately(self):
        executor, slept = _executor()
        fn = _Flaky([RuntimeError("boom")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "error" and fn.calls == 1 and slept == []
        assert outcome.error_fields()["error_type"] == "RuntimeError"

    def test_fail_fast_raises_wrapped(self):
        executor, _ = _executor(fail_fast=True)
        with pytest.raises(CellExecutionError) as exc_info:
            executor.execute("cell", _Flaky([RuntimeError("boom")]))
        assert isinstance(exc_info.value.__cause__, RuntimeError)
        assert exc_info.value.context["key"] == "cell"

    def test_wall_clock_budget(self):
        ticks = iter(range(0, 1000, 10))  # every clock() call advances 10s
        executor, _ = _executor(
            budget=CellBudget(wall_clock_s=5.0), clock=lambda: float(next(ticks))
        )
        outcome = executor.execute("cell", lambda: "slow")
        assert outcome.status == "error"
        assert outcome.error_fields()["error_type"] == "CellTimeoutError"

    def test_activation_budget_degrades_when_fallback_given(self):
        class Result:
            def __init__(self, activations):
                self.activations = activations

        executor, _ = _executor(budget=CellBudget(max_activations=100))
        outcome = executor.execute(
            "cell", lambda: Result(5000), degrade=lambda: Result(42)
        )
        assert outcome.status == "degraded" and outcome.ok
        assert outcome.value.activations == 42
        assert "budget-exceeded" in outcome.flags
        assert outcome.error_fields()["error_type"] == "BudgetExceededError"

    def test_activation_budget_errors_without_fallback(self):
        class Result:
            activations = 5000

        executor, _ = _executor(budget=CellBudget(max_activations=100))
        outcome = executor.execute("cell", Result)
        assert outcome.status == "error"
        assert outcome.error_fields()["error_type"] == "BudgetExceededError"

    def test_validation_flags_mark_degraded(self):
        executor, _ = _executor()
        outcome = executor.execute("cell", lambda: "v", validate=lambda v: ["odd-looking"])
        assert outcome.status == "degraded" and outcome.flags == ["odd-looking"]

    def test_validation_error_marks_error(self):
        executor, _ = _executor()

        def validate(value):
            raise FaultInjectedError("impossible stats")

        outcome = executor.execute("cell", lambda: "v", validate=validate)
        assert outcome.status == "error"
        assert outcome.error_fields()["error_type"] == "FaultInjectedError"

    def test_counters(self):
        executor, _ = _executor(retry=RetryPolicy(max_attempts=2))
        executor.execute("a", _Flaky([TransientError("x")]))
        executor.execute("b", lambda: 1)
        assert executor.cells_executed == 2
        assert executor.total_attempts == 3


class TestInfrastructureRetryBudget:
    def test_infra_errors_retry_outside_simulation_budget(self):
        # max_attempts=1 means zero *simulation* retries -- yet worker/OS
        # failures still retry, under their own budget.
        executor, slept = _executor(
            retry=RetryPolicy(max_attempts=1, max_infra_attempts=4, seed=3)
        )
        fn = _Flaky([OSError("pipe"), EOFError(), OSError("pipe")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "ok" and outcome.value == "done"
        assert fn.calls == 4
        policy = RetryPolicy(max_attempts=1, max_infra_attempts=4, seed=3)
        assert slept == [policy.delay_s("cell#infra", a) for a in (1, 2, 3)]

    def test_broken_process_pool_is_retried(self):
        from concurrent.futures.process import BrokenProcessPool

        executor, _ = _executor(retry=RetryPolicy(max_attempts=1, max_infra_attempts=2))
        fn = _Flaky([BrokenProcessPool("worker died")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "ok" and fn.calls == 2

    def test_infra_budget_exhaustion_is_error(self):
        executor, _ = _executor(retry=RetryPolicy(max_attempts=3, max_infra_attempts=2))
        fn = _Flaky([OSError("a"), OSError("b"), OSError("c")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "error" and fn.calls == 2
        assert outcome.error_fields()["error_type"] == "OSError"

    def test_simulation_errors_do_not_touch_infra_budget(self):
        executor, slept = _executor(
            retry=RetryPolicy(max_attempts=1, max_infra_attempts=5)
        )
        fn = _Flaky([ValueError("bad")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "error" and fn.calls == 1 and slept == []

    def test_budgets_are_independent(self):
        # One transient + one infra failure: each consumes its own budget.
        executor, _ = _executor(retry=RetryPolicy(max_attempts=2, max_infra_attempts=2))
        fn = _Flaky([TransientError("blip"), OSError("pipe")])
        outcome = executor.execute("cell", fn)
        assert outcome.status == "ok" and fn.calls == 3

    def test_invalid_infra_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_infra_attempts=0)


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        journal = CheckpointJournal(path)
        journal.append("cell-1", {"workload": "xz", "slowdown_pct": 1.25})
        journal.append("cell-2", {"workload": "mcf", "slowdown_pct": 9.5})
        reloaded = CheckpointJournal(path)
        assert reloaded.completed_keys() == {"cell-1", "cell-2"}
        assert reloaded.completed()["cell-1"] == {"workload": "xz", "slowdown_pct": 1.25}
        assert len(reloaded) == 2

    def test_append_is_atomic_no_temp_leftovers(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        for i in range(5):
            journal.append(f"cell-{i}", {"i": i})
        assert [p.name for p in tmp_path.iterdir()] == ["j.jsonl"]

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("cell-1", {"ok": True})
        with open(path, "a") as handle:
            handle.write('{"key": "cell-2", "record": {"trunc')  # crash mid-append
        reloaded = CheckpointJournal(path)
        assert reloaded.completed_keys() == {"cell-1"}
        assert reloaded.skipped_lines == 1

    def test_entry_without_key_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"record": {}}) + "\n")
        with pytest.raises(JournalError):
            CheckpointJournal(path).load()

    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "absent.jsonl")
        assert journal.load() == [] and journal.completed_keys() == set()

    def test_reset_starts_over(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("cell-1", {})
        journal.reset()
        assert not path.exists()
        assert CheckpointJournal(path).completed_keys() == set()

    def test_lease_fields_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append(
            "cell-1", {"ok": True}, attempt=2, epoch=1, lease_id="abc#a2e1",
            worker_id="w0", duration_s=0.5,
        )
        journal.append("cell-2", {"ok": True})  # plain (serial-style) entry
        reloaded = CheckpointJournal(path)
        assert reloaded.leases() == {
            "cell-1": {"attempt": 2, "epoch": 1, "lease_id": "abc#a2e1"}
        }
        # Entries without lease fields are skipped, not errors, and
        # records load identically either way (backward compatibility).
        assert reloaded.completed() == {"cell-1": {"ok": True}, "cell-2": {"ok": True}}

    def test_truncated_line_increments_metric(self, tmp_path):
        from repro import obs

        path = tmp_path / "j.jsonl"
        CheckpointJournal(path).append("cell-1", {"ok": True})
        with open(path, "a") as handle:
            handle.write('{"key": "cell-2", "rec')
        obs.reset()
        obs.configure(enabled=True)
        try:
            journal = CheckpointJournal(path)
            assert journal.completed_keys() == {"cell-1"}
            assert obs.METRICS.counter_value("resilience.journal.truncated") == 1
        finally:
            obs.reset()
