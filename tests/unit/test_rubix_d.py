"""Unit tests for Rubix-D (and the keyed-xor static variant)."""

import numpy as np
import pytest

from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_keyed_xor import KeyedXorMapping
from repro.dram.config import baseline_config


@pytest.fixture(scope="module")
def config():
    return baseline_config()


class TestFieldSplit:
    def test_paper_bit_allocation(self, config):
        # 28-bit address at GS4: 2 line-in-gang, 5 gang-in-row, 21 row bits.
        mapping = RubixDMapping(config, gang_size=4)
        assert mapping.k_bits == 2
        assert mapping.p_bits == 5
        assert mapping.row_addr_bits == 21
        assert mapping.vgroups == 32

    def test_gs1_has_128_vgroups(self, config):
        assert RubixDMapping(config, gang_size=1).vgroups == 128


class TestTranslation:
    def test_bijective_on_sample(self, config, rng):
        mapping = RubixDMapping(config, gang_size=4)
        lines = np.unique(rng.integers(0, config.total_lines, 20_000, dtype=np.uint64))
        mapped = mapping.translate_trace(lines)
        keys = mapped.global_row * np.int64(128) + mapped.col.astype(np.int64)
        assert len(np.unique(keys)) == len(lines)

    def test_scalar_matches_vectorized(self, config, rng):
        mapping = RubixDMapping(config, gang_size=4)
        lines = rng.integers(0, config.total_lines, 200, dtype=np.uint64)
        mapped = mapping.translate_trace(lines)
        for i in (0, 50, 199):
            coord = mapping.translate(int(lines[i]))
            assert config.flat_bank(coord) == int(mapped.flat_bank[i])
            assert coord.row == int(mapped.row[i])
            assert coord.col == int(mapped.col[i])

    def test_gang_co_resides(self, config):
        mapping = RubixDMapping(config, gang_size=4)
        rows = {config.global_row(mapping.translate(line)) for line in range(4)}
        assert len(rows) == 1

    def test_vertical_scatter(self, config):
        # The gangs of one baseline row must land in different rows
        # (vertical remap fixes the Section-5.2 xor pitfall).
        mapping = RubixDMapping(config, gang_size=4)
        rows = {
            config.global_row(mapping.translate(line)) for line in range(128)
        }
        assert len(rows) == 32  # one row per gang position

    def test_col_bits_pass_through(self, config):
        mapping = RubixDMapping(config, gang_size=4)
        for line in (0, 5, 130, 12345):
            coord = mapping.translate(line)
            assert coord.col == line % 128


class TestDynamicRemapping:
    def test_record_activations_advances_pointer(self, config):
        mapping = RubixDMapping(config, gang_size=4, remap_rate=0.01)
        counts = np.full(32, 1000.0)
        swaps = mapping.record_activations(counts)
        assert swaps >= 0
        assert sum(e.ptr for e in mapping.engines) > 0

    def test_translation_stays_bijective_during_sweep(self, config, rng):
        mapping = RubixDMapping(config, gang_size=4)
        mapping.record_activations(np.full(32, 5000.0))
        lines = np.unique(rng.integers(0, config.total_lines, 20_000, dtype=np.uint64))
        mapped = mapping.translate_trace(lines)
        keys = mapped.global_row * np.int64(128) + mapped.col.astype(np.int64)
        assert len(np.unique(keys)) == len(lines)

    def test_remapping_changes_mapping(self, config, rng):
        mapping = RubixDMapping(config, gang_size=4)
        # Random lines: consecutive row addresses xor-cluster, so a
        # sweep prefix is only guaranteed to catch a *spread* footprint.
        lines = rng.integers(0, config.total_lines, 20_000, dtype=np.uint64)
        before = mapping.translate_trace(lines).global_row.copy()
        mapping.record_activations(np.full(32, 2_000_000.0))
        after = mapping.translate_trace(lines).global_row
        changed = int((before != after).sum())
        assert changed > 0
        # ...but only the swept prefix moved, not the whole space.
        assert changed < len(lines) // 2

    def test_zero_rate_never_remaps(self, config):
        mapping = RubixDMapping(config, gang_size=4, remap_rate=0.0)
        assert mapping.record_activations(np.full(32, 1e6)) == 0
        assert all(e.ptr == 0 for e in mapping.engines)

    def test_fractional_accumulation_deterministic(self, config):
        a = RubixDMapping(config, gang_size=4, seed=5)
        b = RubixDMapping(config, gang_size=4, seed=5)
        for _ in range(3):
            sa = a.record_activations(np.full(32, 37.0))
            sb = b.record_activations(np.full(32, 37.0))
            assert sa == sb

    def test_counts_shape_validated(self, config):
        mapping = RubixDMapping(config, gang_size=4)
        with pytest.raises(ValueError):
            mapping.record_activations(np.zeros(7))

    def test_remap_period_matches_paper(self, config):
        # RR=1% and 2M rows -> ~200M activations per sweep (§5.4).
        mapping = RubixDMapping(config, gang_size=4, remap_rate=0.01)
        assert mapping.remap_period_activations == pytest.approx(2**21 / 0.01)

    def test_swap_cost_commands(self, config):
        costs = RubixDMapping(config, gang_size=4).swap_cost_commands()
        assert costs == {"activations": 3, "reads": 8, "writes": 8}


class TestSegments:
    def test_segmented_storage_grows(self, config):
        plain = RubixDMapping(config, gang_size=4, segments=1)
        segmented = RubixDMapping(config, gang_size=4, segments=32)
        assert segmented.storage_bytes == 32 * plain.storage_bytes
        # Paper: 16 KB SRAM for 32 segments.
        assert segmented.storage_bytes == 16 * 1024

    def test_segmented_remap_period_shrinks(self, config):
        segmented = RubixDMapping(config, gang_size=4, segments=32)
        assert segmented.remap_period_activations == pytest.approx(2**16 / 0.01)

    def test_segmented_bijective(self, config, rng):
        mapping = RubixDMapping(config, gang_size=4, segments=4)
        mapping.record_activations(np.full(32, 2000.0))
        lines = np.unique(rng.integers(0, config.total_lines, 10_000, dtype=np.uint64))
        mapped = mapping.translate_trace(lines)
        keys = mapped.global_row * np.int64(128) + mapped.col.astype(np.int64)
        assert len(np.unique(keys)) == len(lines)

    def test_segment_count_validated(self, config):
        with pytest.raises(ValueError):
            RubixDMapping(config, gang_size=4, segments=3)


class TestStorageBudget:
    def test_paper_storage_512_bytes(self, config):
        # 32 v-groups x 16 B = 512 B (§5.3).
        assert RubixDMapping(config, gang_size=4).storage_bytes == 512


class TestKeyedXor:
    def test_is_static(self, config):
        mapping = KeyedXorMapping(config, gang_size=4)
        assert mapping.remap_rate == 0.0
        assert "Keyed-Xor" in mapping.name

    def test_randomizes_like_rubix_d(self, config):
        mapping = KeyedXorMapping(config, gang_size=4)
        rows = {config.global_row(mapping.translate(line)) for line in range(128)}
        assert len(rows) == 32
