"""Unit tests for the sweep-campaign API."""

import pytest

from repro.experiments.campaign import Campaign, MappingSpec


class TestMappingSpec:
    def test_labels(self):
        assert MappingSpec("coffeelake").label == "coffeelake"
        assert MappingSpec("rubix-s", gang_size=2).label == "rubix-s-gs2"


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return Campaign(
            workloads=["xz", "namd"],
            mappings=[MappingSpec("coffeelake"), MappingSpec("rubix-s", gang_size=4)],
            schemes=["aqua", "blockhammer"],
            thresholds=[1024, 128],
            scale=0.05,
        )

    def test_size(self, campaign):
        assert campaign.size() == 2 * 2 * 2 * 2

    def test_run_produces_one_record_per_cell(self, campaign):
        records = campaign.run()
        assert len(records) == campaign.size()
        keys = {
            "workload",
            "mapping",
            "scheme",
            "t_rh",
            "normalized_performance",
            "slowdown_pct",
            "hot_rows_64",
            "mitigations",
        }
        assert keys.issubset(records[0].keys())

    def test_records_show_the_headline_effect(self, campaign):
        records = campaign.run()

        def cell(mapping, scheme, t_rh, workload="xz"):
            for record in records:
                if (
                    record["workload"] == workload
                    and record["mapping"] == mapping
                    and record["scheme"] == scheme
                    and record["t_rh"] == t_rh
                ):
                    return record
            raise KeyError

        baseline = cell("coffeelake", "blockhammer", 128)
        rubix = cell("rubix-s-gs4", "blockhammer", 128)
        assert rubix["slowdown_pct"] < baseline["slowdown_pct"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Campaign(workloads=[], mappings=[MappingSpec("coffeelake")])
        with pytest.raises(ValueError):
            Campaign(workloads=["xz"], mappings=[])
        with pytest.raises(ValueError):
            Campaign(workloads=["xz"], mappings=[MappingSpec("coffeelake")], scale=0.0)

    def test_deterministic_cell_order(self, campaign):
        cells = list(campaign.cells())
        assert cells[0][0] == "xz"
        assert len(cells) == campaign.size()

    def test_records_carry_status_and_attempts(self, campaign):
        records = campaign.run()
        assert all(r["status"] == "ok" and r["attempts"] == 1 for r in records)

    def test_cell_keys_are_unique_and_stable(self, campaign):
        keys = [campaign.cell_key(*cell) for cell in campaign.cells()]
        assert len(set(keys)) == campaign.size()
        assert keys == [campaign.cell_key(*cell) for cell in campaign.cells()]


class TestMappingCache:
    def test_specs_differing_in_non_label_fields_get_distinct_mappings(self):
        # Regression: the old cache keyed on (label, remap_rate, segments),
        # so specs differing only in other fields could collide.
        campaign = Campaign(
            workloads=["xz"],
            mappings=[
                MappingSpec("rubix-d", gang_size=4, remap_rate=0.01),
                MappingSpec("rubix-d", gang_size=4, remap_rate=0.0),
            ],
        )
        a, b = (campaign._mapping(spec) for spec in campaign.mappings)
        assert a is not b
        assert a.remap_rate == 0.01 and b.remap_rate == 0.0

    def test_identical_specs_share_one_mapping(self):
        campaign = Campaign(workloads=["xz"], mappings=[MappingSpec("rubix-s")])
        spec = MappingSpec("rubix-s")
        assert campaign._mapping(spec) is campaign._mapping(spec)
