"""Unit tests for gang address splitting."""

import numpy as np
import pytest

from repro.core.gangs import GangSplitter


class TestSplitMerge:
    @pytest.mark.parametrize("gang_size,k", [(1, 0), (2, 1), (4, 2), (8, 3)])
    def test_k_bits(self, gang_size, k):
        splitter = GangSplitter(line_addr_bits=28, gang_size=gang_size)
        assert splitter.k_bits == k
        assert splitter.gang_bits == 28 - k

    def test_split_values(self):
        splitter = GangSplitter(line_addr_bits=28, gang_size=4)
        gang, offset = splitter.split(0b1011_01)
        assert offset == 0b01
        assert gang == 0b1011

    def test_merge_roundtrip(self):
        splitter = GangSplitter(line_addr_bits=28, gang_size=4)
        for line in (0, 3, 4, 1_000_003, (1 << 28) - 1):
            gang, offset = splitter.split(line)
            assert splitter.merge(gang, offset) == line

    def test_array_roundtrip(self):
        splitter = GangSplitter(line_addr_bits=28, gang_size=2)
        lines = np.random.default_rng(1).integers(0, 1 << 28, 1000, dtype=np.uint64)
        gang, offset = splitter.split(lines)
        assert np.array_equal(splitter.merge(gang, offset), lines)

    def test_gang_size_one_passthrough(self):
        splitter = GangSplitter(line_addr_bits=28, gang_size=1)
        gang, offset = splitter.split(12345)
        assert gang == 12345
        assert offset == 0

    def test_contiguous_lines_share_gang(self):
        splitter = GangSplitter(line_addr_bits=28, gang_size=4)
        gangs = {splitter.split(line)[0] for line in range(4)}
        assert len(gangs) == 1
        assert splitter.split(4)[0] not in gangs


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            GangSplitter(line_addr_bits=28, gang_size=3)

    def test_gang_consuming_whole_address_rejected(self):
        with pytest.raises(ValueError):
            GangSplitter(line_addr_bits=4, gang_size=16)
