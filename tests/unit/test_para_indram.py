"""Unit tests for PARA and the in-DRAM sampling trackers."""

import pytest

from repro.dram.config import Coordinate, DRAMConfig
from repro.mitigations.indram import (
    InDRAMSamplingTracker,
    compare_trackers,
    measure_escape_probability,
)
from repro.mitigations.para import PARA, para_probability_for
from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker


@pytest.fixture()
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)


def _coord(config, row):
    return Coordinate(channel=0, rank=0, bank=0, row=row, col=0)


class TestParaProbability:
    def test_original_sizing(self):
        # Kim et al. sized p ~ 0.001-0.01 for thresholds of tens of K.
        assert para_probability_for(4800, 1e-15) == pytest.approx(0.0072, abs=3e-4)

    def test_lower_threshold_needs_higher_p(self):
        assert para_probability_for(128) > para_probability_for(4800)

    def test_validation(self):
        with pytest.raises(ValueError):
            para_probability_for(0)
        with pytest.raises(ValueError):
            para_probability_for(100, escape_target=2.0)


class TestPARA:
    def test_refresh_rate_tracks_probability(self, config):
        para = PARA(config, t_rh=128, probability=0.25, seed=1)
        triggered = 0
        for i in range(4000):
            action = para.on_activation(_coord(config, i % 50), i * 1e-7)
            triggered += action.stall_s > 0
        assert triggered == pytest.approx(1000, rel=0.15)

    def test_stateless_refreshes_neighbours(self, config):
        para = PARA(config, t_rh=128, probability=1.0)
        para.on_activation(_coord(config, 10), 0.0)
        assert para.refreshes_issued == 2  # rows 9 and 11

    def test_never_blocks_channel(self, config):
        para = PARA(config, t_rh=128, probability=1.0)
        action = para.on_activation(_coord(config, 10), 0.0)
        assert not action.blocks_channel

    def test_expected_overhead(self, config):
        para = PARA(config, t_rh=128, probability=0.01)
        overhead = para.expected_refresh_overhead(1_000_000)
        assert overhead == pytest.approx(10_000 * para.costs.victim_refresh_s)

    def test_validation(self, config):
        with pytest.raises(ValueError):
            PARA(config, t_rh=128, probability=0.0)


class TestInDRAMSamplingTracker:
    def test_tracked_row_triggers_at_threshold(self):
        tracker = InDRAMSamplingTracker(threshold=5, sample_probability=1.0)
        fired = [tracker.observe(7) for _ in range(5)]
        assert fired == [False, False, False, False, True]

    def test_sampling_misses_some_rows(self):
        tracker = InDRAMSamplingTracker(
            threshold=4, num_entries=2, sample_probability=0.05, seed=3
        )
        # A single burst of 10 activations is often never sampled.
        fired = any(tracker.observe(42) for _ in range(10))
        # Either outcome is legal; the tracker must at least not crash
        # and must keep its table bounded.
        assert len(tracker.counts) <= 2
        assert fired in (True, False)

    def test_table_bounded(self):
        tracker = InDRAMSamplingTracker(threshold=100, num_entries=4, sample_probability=1.0)
        for row in range(50):
            tracker.observe(row)
        assert len(tracker.counts) <= 4

    def test_reset(self):
        tracker = InDRAMSamplingTracker(threshold=5, sample_probability=1.0)
        tracker.observe(1)
        tracker.reset()
        assert not tracker.counts

    def test_validation(self):
        with pytest.raises(ValueError):
            InDRAMSamplingTracker(threshold=5, num_entries=0)
        with pytest.raises(ValueError):
            InDRAMSamplingTracker(threshold=5, sample_probability=0.0)


class TestEscapeProbability:
    def test_ideal_tracker_never_escapes(self):
        report = measure_escape_probability(
            lambda: PerRowTracker(threshold=64), trials=5
        )
        assert report.escape_probability == 0.0

    def test_tiny_sampling_tracker_escapes_like_published(self):
        # DSAC 13.9% / PAT 6.9%: an area-limited sampling tracker under a
        # many-sided pattern lands in the single-to-double-digit percent
        # escape regime.
        report = measure_escape_probability(
            lambda: InDRAMSamplingTracker(
                threshold=64, num_entries=16, sample_probability=0.3, seed=9
            ),
            aggressors=16,
            trials=20,
        )
        assert 0.02 < report.escape_probability < 0.4

    def test_bigger_table_escapes_less(self):
        small = measure_escape_probability(
            lambda: InDRAMSamplingTracker(
                threshold=64, num_entries=2, sample_probability=0.1, seed=5
            ),
            trials=15,
        )
        large = measure_escape_probability(
            lambda: InDRAMSamplingTracker(
                threshold=64, num_entries=32, sample_probability=0.5, seed=5
            ),
            trials=15,
        )
        assert large.escape_probability <= small.escape_probability

    def test_compare_trackers(self):
        reports = compare_trackers(
            64,
            [
                lambda: PerRowTracker(threshold=64),
                lambda: MisraGriesTracker(threshold=64, num_counters=64),
            ],
            ["ideal", "misra-gries-64"],
            trials=5,
        )
        assert [r.tracker for r in reports] == ["ideal", "misra-gries-64"]
        assert reports[0].escape_probability == 0.0
        assert reports[1].escape_probability == 0.0  # guaranteed tracking

    def test_compare_validation(self):
        with pytest.raises(ValueError):
            compare_trackers(64, [lambda: PerRowTracker(64)], ["a", "b"])
