"""Unit tests for the calibrated SPEC-like workload generators."""

import numpy as np
import pytest

from repro.dram.fast_model import analyze_trace
from repro.mapping.intel import CoffeeLakeMapping
from repro.dram.config import baseline_config
from repro.workloads.spec import (
    SPEC_PROFILES,
    SpecProfile,
    spec_names,
    spec_profile,
    spec_trace,
)


class TestProfiles:
    def test_eighteen_workloads(self):
        assert len(spec_names()) == 18

    def test_profile_lookup(self):
        assert spec_profile("gcc").mpki == pytest.approx(6.12)
        with pytest.raises(KeyError):
            spec_profile("nonexistent")

    def test_calibration_targets_match_paper_averages(self):
        # Paper: average 9528 ACT-64+ hot rows and 206 ACT-512+.
        hot64 = sum(p.hot64_rows for p in SPEC_PROFILES.values()) / 18
        hot512 = sum(p.hot512_rows for p in SPEC_PROFILES.values()) / 18
        assert hot64 == pytest.approx(9528, rel=0.15)
        assert hot512 == pytest.approx(206, rel=0.05)

    def test_average_mpki_matches_paper(self):
        mpki = sum(p.mpki for p in SPEC_PROFILES.values()) / 18
        assert mpki == pytest.approx(3.01, rel=0.05)

    def test_footprint_under_five_percent(self):
        # Paper: <5% of the 2M rows touched per window.
        avg_unique = sum(p.unique_rows for p in SPEC_PROFILES.values()) / 18
        assert avg_unique < 0.05 * 2 * 1024 * 1024

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            SpecProfile("bad", 1.0, 10, 20, 0, 0.5)  # unique < hot
        with pytest.raises(ValueError):
            SpecProfile("bad", 1.0, 100, 10, 20, 0.5)  # 512 > 64
        with pytest.raises(ValueError):
            SpecProfile("bad", 1.0, 100, 10, 0, 1.5)  # bad fraction


class TestGeneratedTraces:
    def test_deterministic(self):
        a = spec_trace("xz", scale=0.05)
        b = spec_trace("xz", scale=0.05)
        assert np.array_equal(a.lines, b.lines)

    def test_seed_changes_trace(self):
        a = spec_trace("xz", scale=0.05, seed=1)
        b = spec_trace("xz", scale=0.05, seed=2)
        assert not np.array_equal(a.lines, b.lines)

    def test_addresses_in_range(self):
        trace = spec_trace("mcf", scale=0.05)
        assert int(trace.lines.max()) < (1 << 28)

    def test_mpki_close_to_profile(self):
        for name in ("blender", "gcc", "namd"):
            trace = spec_trace(name, scale=0.1)
            assert trace.mpki == pytest.approx(spec_profile(name).mpki, rel=0.25)

    @pytest.mark.parametrize("name", ["gcc", "mcf", "xz"])
    def test_hot_rows_match_targets(self, name):
        scale = 0.1
        config = baseline_config()
        trace = spec_trace(name, scale=scale)
        mapped = CoffeeLakeMapping(config).translate_trace(trace.lines)
        stats = analyze_trace(
            mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank
        )
        profile = spec_profile(name)
        assert stats.hot_rows(64) == pytest.approx(profile.hot64_rows * scale, rel=0.25)
        if profile.hot512_rows * scale >= 10:
            assert stats.hot_rows(512) == pytest.approx(
                profile.hot512_rows * scale, rel=0.4
            )

    def test_leela_has_no_hot_rows(self):
        config = baseline_config()
        trace = spec_trace("leela", scale=0.5)
        mapped = CoffeeLakeMapping(config).translate_trace(trace.lines)
        stats = analyze_trace(
            mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank
        )
        assert stats.hot_rows(64) <= 2

    def test_scale_shrinks_footprint(self):
        small = spec_trace("gcc", scale=0.05)
        large = spec_trace("gcc", scale=0.1)
        assert len(large) > 1.5 * len(small)

    def test_cores_scale_accesses(self):
        four = spec_trace("gcc", scale=0.05, cores=4)
        eight = spec_trace("gcc", scale=0.05, cores=8)
        assert len(eight) == pytest.approx(2 * len(four), rel=0.1)

    def test_wider_address_space(self):
        trace = spec_trace("gcc", scale=0.05, line_addr_bits=29)
        assert int(trace.lines.max()) < (1 << 29)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            spec_trace("gcc", scale=0.05, cores=0)
        with pytest.raises(KeyError):
            spec_trace("notaworkload")
