"""Unit tests for the metrics registry and its snapshot machinery."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MAX_SERIES_PER_METRIC,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    filter_snapshot,
    parse_series_key,
    series_key,
    snapshot_from_jsonl,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
)


class TestSeriesKey:
    def test_no_labels_is_bare_name(self):
        assert series_key("cache.requests", {}) == "cache.requests"

    def test_labels_sorted_stably(self):
        a = series_key("m", {"b": 1, "a": 2})
        b = series_key("m", {"a": 2, "b": 1})
        assert a == b == "m|a=2,b=1"

    def test_round_trip(self):
        key = series_key("span.count", {"span": "sim.window", "status": "ok"})
        name, labels = parse_series_key(key)
        assert name == "span.count"
        assert labels == {"span": "sim.window", "status": "ok"}


class TestRegistryBasics:
    def test_disabled_mutations_are_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("b", 3.0)
        reg.observe("c", 0.5)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counter_accumulates_with_labels(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("cache.requests", result="hit")
        reg.inc("cache.requests", 2, result="hit")
        reg.inc("cache.requests", result="miss")
        assert reg.counter_value("cache.requests", result="hit") == 3
        assert reg.counter_value("cache.requests", result="miss") == 1
        assert reg.counter_total("cache.requests") == 4

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry(enabled=True)
        reg.set_gauge("cache.entries", 5)
        reg.set_gauge("cache.entries", 2)
        assert reg.gauge_value("cache.entries") == 2

    def test_absent_series_defaults(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter_value("nope") == 0
        assert reg.gauge_value("nope") is None
        assert reg.histogram("nope") is None


class TestHistogram:
    def test_bucket_assignment_and_overflow(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.mean == pytest.approx(55.55 / 4)

    def test_boundary_value_lands_in_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)  # le semantics: exactly the bound is inside
        assert hist.counts == [1, 0, 0]

    def test_registry_observe_uses_default_time_buckets(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("span.seconds", 0.3, span="x")
        hist = reg.histogram("span.seconds", span="x")
        assert hist.buckets == DEFAULT_TIME_BUCKETS
        assert hist.count == 1

    def test_declare_histogram_overrides_buckets(self):
        reg = MetricsRegistry(enabled=True)
        reg.declare_histogram("bytes", (1024, 65536))
        reg.observe("bytes", 2000)
        assert reg.histogram("bytes").buckets == (1024, 65536)
        assert reg.histogram("bytes").counts == [0, 1, 0]


class TestCardinalityCap:
    def test_overflow_series_after_cap(self):
        reg = MetricsRegistry(enabled=True)
        for i in range(MAX_SERIES_PER_METRIC + 50):
            reg.inc("m", worker=f"w{i}")
        # The cap admitted exactly MAX series; the rest folded together.
        overflow = reg.counter_value("m", overflow="true")
        assert overflow == 50
        assert reg.series_dropped == 50
        assert reg.counter_total("m") == MAX_SERIES_PER_METRIC + 50

    def test_existing_series_keep_counting_past_cap(self):
        reg = MetricsRegistry(enabled=True)
        for i in range(MAX_SERIES_PER_METRIC):
            reg.inc("m", worker=f"w{i}")
        reg.inc("m", worker="w0")  # existing series, not a new one
        assert reg.counter_value("m", worker="w0") == 2
        assert reg.series_dropped == 0


class TestSnapshotMergeDiff:
    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        for reg in (a, b):
            reg.inc("campaign.cells", status="ok")
            reg.observe("span.seconds", 0.2, span="x")
        b.set_gauge("cache.entries", 7)
        a.merge(b.snapshot())
        assert a.counter_value("campaign.cells", status="ok") == 2
        assert a.histogram("span.seconds", span="x").count == 2
        assert a.gauge_value("cache.entries") == 7

    def test_merge_ignores_enabled_flag(self):
        parent = MetricsRegistry(enabled=False)
        parent.merge({"counters": {"campaign.cells|status=ok": 3}})
        assert parent.counter_value("campaign.cells", status="ok") == 3

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry(enabled=True)
        a.observe("h", 1.0)
        other = {
            "histograms": {
                "h": {"buckets": [5.0], "counts": [1, 0], "sum": 1.0, "count": 1}
            }
        }
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(other)

    def test_diff_is_the_cells_contribution(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", status="ok", )
        reg.observe("span.seconds", 0.1, span="x")
        before = reg.snapshot()
        reg.inc("campaign.cells", status="ok")
        reg.inc("campaign.activations", 100)
        reg.observe("span.seconds", 0.3, span="x")
        delta = diff_snapshots(reg.snapshot(), before)
        assert delta["counters"] == {
            "campaign.cells|status=ok": 1,
            "campaign.activations": 100,
        }
        hist = delta["histograms"]["span.seconds|span=x"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.3)

    def test_serial_equals_merged_deltas(self):
        # The serial==parallel contract in miniature: applying the same
        # increments directly, or shipping them as two deltas and
        # merging, must produce identical snapshots.
        serial = MetricsRegistry(enabled=True)
        parent = MetricsRegistry(enabled=True)
        worker = MetricsRegistry(enabled=True)
        worker.inc("inherited.noise", 99)  # fork-inherited state
        for cell in range(2):
            serial.inc("campaign.cells", status="ok")
            serial.observe("span.seconds", 0.1 * (cell + 1), span="campaign.cell")
            before = worker.snapshot()
            worker.inc("campaign.cells", status="ok")
            worker.observe("span.seconds", 0.1 * (cell + 1), span="campaign.cell")
            parent.merge(diff_snapshots(worker.snapshot(), before))
        assert parent.snapshot() == serial.snapshot()


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", 3, status="ok")
        reg.set_gauge("cache.entries", 4)
        reg.observe("span.seconds", 0.02, span="sim.window")
        return reg.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        snap = self._populated()
        path = tmp_path / "metrics.jsonl"
        path.write_text("\n".join(snapshot_to_jsonl(snap)) + "\n")
        assert snapshot_from_jsonl(path) == snap

    def test_jsonl_lines_are_valid_json(self):
        for line in snapshot_to_jsonl(self._populated()):
            entry = json.loads(line)
            assert entry["kind"] in ("counter", "gauge", "histogram")

    def test_prometheus_rendering(self):
        text = snapshot_to_prometheus(self._populated())
        assert '# TYPE repro_campaign_cells_total counter' in text
        assert 'repro_campaign_cells_total{status="ok"} 3' in text
        assert "# TYPE repro_cache_entries gauge" in text
        assert 'repro_span_seconds_bucket{le="+Inf",span="sim.window"} 1' in text
        assert 'repro_span_seconds_count{span="sim.window"} 1' in text

    def test_prometheus_buckets_are_cumulative(self):
        reg = MetricsRegistry(enabled=True)
        reg.declare_histogram("h", (1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5):
            reg.observe("h", value)
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="3.0"} 3' in text

    def test_filter_snapshot_by_prefix(self):
        snap = self._populated()
        semantic = filter_snapshot(snap, ("campaign.",))
        assert list(semantic["counters"]) == ["campaign.cells|status=ok"]
        assert semantic["gauges"] == {}
        assert semantic["histograms"] == {}


class TestPrometheusEscaping:
    """Label values must survive Prometheus text exposition verbatim."""

    def test_quotes_escaped(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", status='say "hi"')
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'status="say \\"hi\\""' in text

    def test_backslashes_escaped_before_quotes(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", status="C:\\traces\\xz")
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'status="C:\\\\traces\\\\xz"' in text
        # The backslash pass must not double-escape the quote escapes.
        reg2 = MetricsRegistry(enabled=True)
        reg2.inc("campaign.cells", status='\\"')
        text2 = snapshot_to_prometheus(reg2.snapshot())
        assert 'status="\\\\\\""' in text2

    def test_newlines_escaped(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", status="line1\nline2")
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'status="line1\\nline2"' in text
        # The exposition itself must stay one line per sample.
        sample_lines = [l for l in text.splitlines() if "line1" in l]
        assert len(sample_lines) == 1

    def test_histogram_label_values_escaped_everywhere(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("span.seconds", 0.01, span='a"b')
        text = snapshot_to_prometheus(reg.snapshot())
        for suffix in ("_bucket", "_sum", "_count"):
            assert f'repro_span_seconds{suffix}' in text
        assert 'span="a\\"b"' in text
        assert 'span="a"b"' not in text


class TestPrometheusOverflowFold:
    """Bucket rendering must stay sound once the series cap folds labels."""

    def test_histogram_folds_into_overflow_series(self):
        reg = MetricsRegistry(enabled=True)
        reg.declare_histogram("h", (1.0, 2.0))
        for i in range(MAX_SERIES_PER_METRIC):
            reg.observe("h", 0.5, worker=f"w{i}")
        # Past the cap: these observations fold into overflow="true".
        for value in (0.5, 1.5, 5.0):
            reg.observe("h", value, worker="one-too-many")
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'repro_h_bucket{le="1.0",overflow="true"} 1' in text
        assert 'repro_h_bucket{le="2.0",overflow="true"} 2' in text
        assert 'repro_h_bucket{le="+Inf",overflow="true"} 3' in text
        assert 'repro_h_count{overflow="true"} 3' in text
        assert 'repro_h_sum{overflow="true"} 7.0' in text
        # Pre-cap series keep their own buckets.
        assert 'repro_h_bucket{le="1.0",worker="w0"} 1' in text
        assert 'worker="one-too-many"' not in text

    def test_overflow_counts_accumulate_across_folded_series(self):
        reg = MetricsRegistry(enabled=True)
        reg.declare_histogram("h", (1.0,))
        for i in range(MAX_SERIES_PER_METRIC):
            reg.observe("h", 0.5, worker=f"w{i}")
        reg.observe("h", 0.5, worker="xa")
        reg.observe("h", 0.5, worker="xb")
        text = snapshot_to_prometheus(reg.snapshot())
        assert 'repro_h_bucket{le="1.0",overflow="true"} 2' in text
