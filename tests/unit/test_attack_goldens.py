"""Golden tests for the attack constructors.

Pins (a) the exact per-row activation histograms of all six attacks
under Coffee Lake and Rubix-S -- any change to trace construction must
be a deliberate golden update -- and (b) the two historical
trace-construction bugs this layer fixed: the Half-Double near_b
interleaving (which silently drained far_a twice per period) and the
blind-adjacency uint64 wraparound below address 0.
"""

import numpy as np
import pytest

from repro.core.rubix_s import RubixSMapping
from repro.dram.config import baseline_config
from repro.mapping.intel import CoffeeLakeMapping
from repro.workloads.attacks import (
    ATTACK_SPECS,
    blacksmith_attack,
    blacksmith_spec,
    blind_adjacency_attack,
    blind_adjacency_spec,
    double_sided_attack,
    double_sided_spec,
    half_double_attack,
    half_double_spec,
    many_sided_attack,
    many_sided_spec,
    single_sided_attack,
    single_sided_spec,
)
from repro.workloads.playbook import compile_playbook, line_of


@pytest.fixture(scope="module")
def coffeelake():
    return CoffeeLakeMapping(baseline_config())


@pytest.fixture(scope="module")
def rubix_s():
    return RubixSMapping(baseline_config(), gang_size=4, seed=7)


def histogram(mapping, lines):
    mapped = mapping.translate_trace(lines)
    rows, counts = np.unique(mapped.global_row, return_counts=True)
    return dict(zip(rows.tolist(), counts.tolist()))


def build_all(mapping):
    """All six attacks, at small golden-friendly parameters."""
    return {
        "single": single_sided_attack(mapping, activations=100),
        "double": double_sided_attack(mapping, activations_per_side=100),
        "half_double": half_double_attack(mapping, far_activations=40, near_every=4),
        "many_sided": many_sided_attack(mapping, sides=4, rounds=50),
        "blacksmith": blacksmith_attack(mapping, sides=4, rounds=50, intensity_ratio=3),
        "blind": blind_adjacency_attack(activations=100),
    }


#: Per-global-row activation counts of the Coffee-Lake-constructed
#: attacks, as seen by each evaluation mapping.  Under Rubix-S (seed 7)
#: the same line stream lands in unrelated rows -- the randomized
#: mapping disperses exactly the adjacency the attacks rely on.
GOLDEN_COFFEELAKE = {
    "single": {1000: 100, 5000: 100},
    "double": {999: 100, 1001: 100},
    "half_double": {998: 30, 999: 10, 1001: 10, 1002: 30},
    "many_sided": {1000: 50, 1002: 50, 1004: 50, 1006: 50},
    "blacksmith": {1000: 150, 1002: 150, 1004: 50, 1006: 50},
    "blind": {524350: 100, 1310782: 100},
}
GOLDEN_RUBIX_S = {
    "single": {1243386: 100, 1495893: 100},
    "double": {1147: 100, 1258541: 100},
    "half_double": {1147: 10, 323008: 30, 1258541: 10, 1611735: 30},
    "many_sided": {323008: 50, 1012029: 50, 1495893: 50, 1640845: 50},
    "blacksmith": {323008: 150, 1012029: 50, 1495893: 150, 1640845: 50},
    "blind": {1888909: 100, 1967306: 100},
}


class TestGoldenHistograms:
    @pytest.mark.parametrize("name", sorted(GOLDEN_COFFEELAKE))
    def test_under_coffeelake(self, coffeelake, name):
        attack = build_all(coffeelake)[name]
        assert histogram(coffeelake, attack.lines) == GOLDEN_COFFEELAKE[name]

    @pytest.mark.parametrize("name", sorted(GOLDEN_RUBIX_S))
    def test_under_rubix_s(self, coffeelake, rubix_s, name):
        attack = build_all(coffeelake)[name]
        assert histogram(rubix_s, attack.lines) == GOLDEN_RUBIX_S[name]

    def test_rubix_s_disperses_every_adjacency(self, coffeelake, rubix_s):
        # No two aggressor rows of any Coffee-Lake-built attack stay
        # within hammering distance (2 rows) of each other under Rubix-S.
        for name, attack in build_all(coffeelake).items():
            rows = sorted(histogram(rubix_s, attack.lines))
            gaps = np.diff(np.asarray(rows))
            assert (gaps > 2).all(), f"{name}: adjacent rows survived remapping"


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(GOLDEN_COFFEELAKE))
    def test_identical_lines_on_rebuild(self, coffeelake, name):
        a = build_all(coffeelake)[name]
        b = build_all(coffeelake)[name]
        assert np.array_equal(a.lines, b.lines)
        assert a.name == b.name and a.instructions == b.instructions


class TestWrappersMatchSpecs:
    """Every attack wrapper is a thin shim over its playbook spec."""

    def test_bit_identical(self, coffeelake):
        pairs = [
            (single_sided_attack(coffeelake), single_sided_spec()),
            (double_sided_attack(coffeelake), double_sided_spec()),
            (
                half_double_attack(coffeelake, far_activations=400),
                half_double_spec(far_activations=400),
            ),
            (many_sided_attack(coffeelake), many_sided_spec()),
            (blacksmith_attack(coffeelake), blacksmith_spec()),
            (blind_adjacency_attack(), blind_adjacency_spec()),
        ]
        for attack, spec in pairs:
            compiled = compile_playbook(spec, coffeelake)
            assert np.array_equal(attack.lines, compiled.lines)
            assert attack.name == compiled.name

    def test_attack_specs_registry_is_complete(self):
        assert sorted(ATTACK_SPECS) == [
            "blacksmith",
            "blind",
            "double-sided",
            "half-double",
            "many-sided",
            "single-sided",
        ]
        for builder in ATTACK_SPECS.values():
            assert isinstance(builder(), dict)


class TestHalfDoubleInterleaving:
    """Satellite: near_b must land on far_b (odd) slots.

    The legacy constructor planted both injections on even slots, so
    far_a lost two activations per period while far_b lost none.
    """

    def test_exact_counts_small_period(self, coffeelake):
        attack = half_double_attack(coffeelake, far_activations=40, near_every=4)
        assert histogram(coffeelake, attack.lines) == {
            998: 30,
            999: 10,
            1001: 10,
            1002: 30,
        }

    @pytest.mark.parametrize(
        "far,near_every,expected",
        [
            (40, 4, {998: 30, 999: 10, 1001: 10, 1002: 30}),
            (40, 5, {998: 32, 999: 8, 1001: 8, 1002: 32}),
            (60, 6, {998: 50, 999: 10, 1001: 10, 1002: 50}),
        ],
    )
    def test_exact_counts(self, coffeelake, far, near_every, expected):
        attack = half_double_attack(
            coffeelake, far_activations=far, near_every=near_every
        )
        assert histogram(coffeelake, attack.lines) == expected

    @pytest.mark.parametrize("far,near_every", [(40, 4), (100, 3), (20000, 400)])
    def test_far_pressure_is_symmetric(self, coffeelake, far, near_every):
        attack = half_double_attack(
            coffeelake, far_activations=far, near_every=near_every
        )
        counts = histogram(coffeelake, attack.lines)
        # Both distance-2 aggressors within one activation of each other
        # (exact when the period divides the pattern length), and both
        # distance-1 rows likewise -- the property the legacy phase bug
        # broke (far_a drained twice per period, far_b untouched).
        assert abs(counts[998] - counts[1002]) <= 1
        assert abs(counts[999] - counts[1001]) <= 1
        assert counts[998] + counts[999] == far
        assert counts[1001] + counts[1002] == far

    def test_near_rows_stay_infrequent(self, coffeelake):
        # Defaults: near accesses must stay below tracker thresholds
        # while far pressure greatly exceeds them (the attack's premise).
        attack = half_double_attack(coffeelake)
        counts = histogram(coffeelake, attack.lines)
        assert counts[999] < 64 and counts[1001] < 64
        assert counts[998] > 512 and counts[1002] > 512

    def test_period_validation(self, coffeelake):
        with pytest.raises(ValueError, match="near_every"):
            half_double_attack(coffeelake, near_every=1)


class TestBlindWraparound:
    """Satellite: base_line below one row must fail, not wrap."""

    def test_underflow_raises(self):
        with pytest.raises(ValueError, match="wrap below 0"):
            blind_adjacency_attack(base_line=64, lines_per_row=128)

    def test_boundary_is_legal(self):
        attack = blind_adjacency_attack(
            base_line=128, lines_per_row=128, activations=3
        )
        assert attack.lines.tolist() == [0, 256] * 3

    def test_spec_rejects_bad_lines_per_row(self):
        with pytest.raises(ValueError, match="lines_per_row"):
            blind_adjacency_spec(lines_per_row=0)


class TestBlacksmithVectorization:
    """Satellite: the one-shot permuted schedule is bit-identical to the
    historical per-round permutation loop (same seed, same bit stream)."""

    @staticmethod
    def legacy_reference(mapping, *, bank, base_row, sides, row_gap, rounds,
                         intensity_ratio, seed):
        rows = [base_row + i * row_gap for i in range(sides)]
        lines = np.asarray(
            [line_of(mapping, bank, row) for row in rows], dtype=np.uint64
        )
        intensities = [intensity_ratio, intensity_ratio] + [1] * (sides - 2)
        round_pattern = np.repeat(np.arange(sides), intensities)
        rng = np.random.default_rng(seed)
        chunks = [
            lines[round_pattern[rng.permutation(round_pattern.size)]]
            for _ in range(rounds)
        ]
        return np.concatenate(chunks)

    @pytest.mark.parametrize("seed", [0xB5, 1, 2024])
    def test_bit_identical_to_per_round_loop(self, coffeelake, seed):
        params = dict(
            bank=0, base_row=1000, sides=6, row_gap=2, rounds=40,
            intensity_ratio=4, seed=seed,
        )
        attack = blacksmith_attack(coffeelake, **params)
        reference = self.legacy_reference(coffeelake, **params)
        assert np.array_equal(attack.lines, reference)
