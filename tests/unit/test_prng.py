"""Unit tests for repro.utils.prng."""

import pytest

from repro.utils.prng import SplitMix64, derive_key, random_keys, splitmix64_step


class TestSplitMix64:
    def test_deterministic(self):
        a = SplitMix64(seed=42)
        b = SplitMix64(seed=42)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert SplitMix64(1).next() != SplitMix64(2).next()

    def test_outputs_64_bit(self):
        rng = SplitMix64(7)
        for _ in range(100):
            assert 0 <= rng.next() < (1 << 64)

    def test_next_bits_range(self):
        rng = SplitMix64(3)
        for _ in range(100):
            assert 0 <= rng.next_bits(5) < 32

    def test_next_bits_validates(self):
        rng = SplitMix64(3)
        with pytest.raises(ValueError):
            rng.next_bits(0)
        with pytest.raises(ValueError):
            rng.next_bits(65)

    def test_next_below_uniformish(self):
        rng = SplitMix64(9)
        draws = [rng.next_below(10) for _ in range(2000)]
        assert set(draws) == set(range(10))

    def test_next_below_validates(self):
        with pytest.raises(ValueError):
            SplitMix64(1).next_below(0)

    def test_fork_independent(self):
        parent = SplitMix64(5)
        child = parent.fork()
        assert child.next() != parent.next()

    def test_numpy_rng_deterministic(self):
        a = SplitMix64(11).numpy_rng().integers(0, 1000, 5)
        b = SplitMix64(11).numpy_rng().integers(0, 1000, 5)
        assert a.tolist() == b.tolist()

    def test_step_mixes(self):
        _, out1 = splitmix64_step(0)
        _, out2 = splitmix64_step(1)
        assert out1 != out2


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(1, "a", 64) == derive_key(1, "a", 64)

    def test_labels_independent(self):
        assert derive_key(1, "a", 64) != derive_key(1, "b", 64)

    def test_seed_matters(self):
        assert derive_key(1, "a", 64) != derive_key(2, "a", 64)

    def test_width(self):
        for nbits in (1, 8, 21, 64):
            assert 0 <= derive_key(3, "x", nbits) < (1 << nbits)

    def test_similar_labels_no_collisions(self):
        # Regression: the Rubix-D v-group labels differ only in digits;
        # a weak absorb collided ~70% of their 21-bit keys.
        keys = {derive_key(0xD1CE, f"rubix-d/vg{i}/seg0", 21) for i in range(128)}
        assert len(keys) >= 126  # allow for a genuine birthday collision


class TestRandomKeys:
    def test_count_and_width(self):
        keys = random_keys(seed=4, count=16, nbits=12)
        assert len(keys) == 16
        assert all(0 <= k < 4096 for k in keys)

    def test_mostly_distinct(self):
        keys = random_keys(seed=4, count=64, nbits=48)
        assert len(set(keys)) == 64
