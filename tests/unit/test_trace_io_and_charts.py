"""Unit tests for trace persistence, charts, and JSON export."""

import json

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.experiments.charts import render_bars
from repro.experiments.common import ExperimentResult
from repro.workloads.trace import Trace
from repro.workloads.trace_io import FORMAT_VERSION, load_trace, save_trace


class TestTraceIO:
    def _trace(self):
        return Trace(
            name="demo",
            lines=np.arange(1000, dtype=np.uint64) * 7,
            instructions=123_456,
            window_s=0.032,
            scale=0.5,
        )

    def test_roundtrip(self, tmp_path):
        trace = self._trace()
        path = save_trace(trace, tmp_path / "demo")
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.instructions == trace.instructions
        assert loaded.window_s == pytest.approx(trace.window_s)
        assert loaded.scale == pytest.approx(trace.scale)
        assert np.array_equal(loaded.lines, trace.lines)

    def test_suffix_appended(self, tmp_path):
        path = save_trace(self._trace(), tmp_path / "demo.trace")
        assert path.suffix == ".npz"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nothing.npz")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_creates_directories(self, tmp_path):
        path = save_trace(self._trace(), tmp_path / "deep" / "dir" / "demo")
        assert path.exists()

    def test_save_leaves_no_temp_files(self, tmp_path):
        save_trace(self._trace(), tmp_path / "demo")
        assert [p.name for p in tmp_path.iterdir()] == ["demo.npz"]

    def _save_with_meta(self, tmp_path, meta):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            lines=np.arange(10, dtype=np.uint64),
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        return path

    def test_not_an_archive_names_the_path(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(TraceFormatError, match="garbage.npz"):
            load_trace(path)

    def test_missing_meta_keys_listed(self, tmp_path):
        path = self._save_with_meta(tmp_path, {"version": FORMAT_VERSION, "name": "x"})
        with pytest.raises(TraceFormatError, match="instructions"):
            load_trace(path)

    def test_unsupported_version(self, tmp_path):
        meta = {
            "version": 99,
            "name": "x",
            "instructions": 10,
            "window_s": 0.064,
            "scale": 1.0,
        }
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(self._save_with_meta(tmp_path, meta))

    def test_malformed_lines_array(self, tmp_path):
        meta = {
            "version": FORMAT_VERSION,
            "name": "x",
            "instructions": 10,
            "window_s": 0.064,
            "scale": 1.0,
        }
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            lines=np.ones((2, 5)),  # 2-D float array
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(TraceFormatError, match="1-D"):
            load_trace(path)

    def test_invalid_meta_values(self, tmp_path):
        meta = {
            "version": FORMAT_VERSION,
            "name": "x",
            "instructions": -5,  # Trace rejects non-positive counts
            "window_s": 0.064,
            "scale": 1.0,
        }
        with pytest.raises(TraceFormatError):
            load_trace(self._save_with_meta(tmp_path, meta))

    def test_trace_format_error_is_value_error(self, tmp_path):
        # Back-compat: pre-taxonomy callers caught ValueError.
        path = self._save_with_meta(tmp_path, {"version": 99})
        with pytest.raises(ValueError):
            load_trace(path)


@pytest.fixture()
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo",
        headers=["config", "hot_rows", "note"],
        rows=[["baseline", 7600, "x"], ["rubix", 33, "y"]],
        notes=["a note"],
    )


class TestCharts:
    def test_bars_scale_with_values(self, result):
        chart = render_bars(result)
        lines = chart.splitlines()
        baseline_bar = lines[1].count("#")
        rubix_bar = lines[2].count("#")
        assert baseline_bar > rubix_bar
        assert "7600" in chart

    def test_log_scale(self, result):
        chart = render_bars(result, log_scale=True)
        lines = chart.splitlines()
        assert lines[1].count("#") > lines[2].count("#") > 0

    def test_column_selection(self, result):
        chart = render_bars(result, column="hot_rows")
        assert "hot_rows" in chart

    def test_non_numeric_column_rejected(self, result):
        with pytest.raises(ValueError):
            render_bars(result, column="note")

    def test_no_numeric_columns(self):
        r = ExperimentResult("x", "t", ["a"], [["only-text"]])
        with pytest.raises(ValueError):
            render_bars(r)


class TestJsonExport:
    def test_round_trips_through_json(self, result):
        data = json.loads(result.to_json())
        assert data["experiment_id"] == "demo"
        assert data["rows"][0][1] == 7600
        assert data["notes"] == ["a note"]

    def test_cli_json_and_chart(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out = tmp_path / "fig1a.json"
        assert main(["run", "fig1a", "--chart", "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "#" in printed
        data = json.loads(out.read_text())
        assert data["experiment_id"] == "fig1a"
