"""Unit tests for repro.dram.config."""

import pytest

from repro.dram.config import (
    Coordinate,
    DRAMConfig,
    DRAMTiming,
    baseline_config,
    multichannel_config,
)
from repro.utils.units import GB


class TestTiming:
    def test_latency_ordering(self):
        t = DRAMTiming()
        assert t.row_hit_latency < t.row_closed_latency < t.row_conflict_latency

    def test_paper_values(self):
        t = DRAMTiming()
        assert t.t_rcd == pytest.approx(14.2e-9)
        assert t.t_rc == pytest.approx(45e-9)
        assert t.t_refw == pytest.approx(64e-3)

    def test_channel_bandwidth(self):
        # DDR4-2400 on a 64-bit bus: 19.2 GB/s.
        assert DRAMTiming().channel_bandwidth == pytest.approx(19.2e9, rel=0.01)


class TestGeometry:
    def test_baseline_matches_table1(self):
        cfg = baseline_config()
        assert cfg.capacity_bytes == 16 * GB
        assert cfg.total_rows == 2 * 1024 * 1024
        assert cfg.lines_per_row == 128
        assert cfg.line_addr_bits == 28
        assert cfg.col_bits == 7
        assert cfg.bank_bits == 4
        assert cfg.row_bits == 17

    def test_multichannel_capacity(self):
        for channels in (2, 4):
            cfg = multichannel_config(channels)
            assert cfg.capacity_bytes == 32 * GB
            assert cfg.channels == channels

    def test_multichannel_rejects_odd(self):
        with pytest.raises(ValueError):
            multichannel_config(3)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(banks=12)

    def test_row_smaller_than_line_rejected(self):
        with pytest.raises(ValueError):
            DRAMConfig(row_bytes=32)


class TestCoordinates:
    def test_flat_bank_unique(self):
        cfg = DRAMConfig(channels=2, ranks=2, banks=4, rows_per_bank=64)
        seen = set()
        for ch in range(2):
            for rk in range(2):
                for bk in range(4):
                    seen.add(cfg.flat_bank(Coordinate(ch, rk, bk, 0, 0)))
        assert len(seen) == cfg.total_banks

    def test_global_row_roundtrip(self):
        cfg = DRAMConfig(channels=2, ranks=2, banks=4, rows_per_bank=64)
        for gid in (0, 1, 63, 64, 1000, cfg.total_rows - 1):
            coord = cfg.coordinate_of_row(gid, col=5)
            assert cfg.global_row(coord) == gid
            assert coord.col == 5

    def test_coordinate_of_row_bounds(self):
        cfg = baseline_config()
        with pytest.raises(ValueError):
            cfg.coordinate_of_row(cfg.total_rows)

    def test_validate_coordinate(self):
        cfg = baseline_config()
        cfg.validate_coordinate(Coordinate(0, 0, 15, 0, 127))
        with pytest.raises(ValueError):
            cfg.validate_coordinate(Coordinate(0, 0, 16, 0, 0))
        with pytest.raises(ValueError):
            cfg.validate_coordinate(Coordinate(0, 0, 0, 0, 128))

    def test_with_timing(self):
        cfg = baseline_config().with_timing(t_rc=50e-9)
        assert cfg.timing.t_rc == pytest.approx(50e-9)
        assert cfg.timing.t_cl == pytest.approx(14.2e-9)
