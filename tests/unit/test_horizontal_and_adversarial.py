"""Unit tests for the §5.2 pitfall mapping and adversarial analysis."""

import numpy as np
import pytest

from repro.analysis.adversarial import (
    RobustnessReport,
    gang_stride_attack_trace,
    mapping_robustness,
)
from repro.core.rubix_horizontal import HorizontalXorMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import baseline_config
from repro.mapping.stride import LargeStrideMapping


@pytest.fixture(scope="module")
def config():
    return baseline_config()


class TestHorizontalXor:
    def test_roundtrip(self, config):
        mapping = HorizontalXorMapping(config)
        for line in (0, 99, 123_456, config.total_lines - 1):
            assert mapping.inverse(mapping.translate(line)) == line

    def test_moves_rows(self, config):
        # The content of a row does move somewhere else...
        from repro.mapping.intel import CoffeeLakeMapping

        mapping = HorizontalXorMapping(config)
        baseline = CoffeeLakeMapping(config)
        moved = sum(
            config.global_row(mapping.translate(line))
            != config.global_row(baseline.translate(line))
            for line in range(0, 12800, 128)
        )
        assert moved > 90  # nearly every row relocated

    def test_lines_stay_together(self, config):
        # ...but row-mates remain row-mates: the pitfall.
        mapping = HorizontalXorMapping(config)
        assert mapping.lines_stay_together()
        rows = {
            config.global_row(mapping.translate(8_000_000 + c)) for c in range(128)
        }
        # One aligned 128-line region maps into at most 2 rows (the key's
        # low bits can straddle one boundary), versus 32 for Rubix.
        assert len(rows) <= 2

    def test_hot_rows_not_reduced(self, config):
        # The executable statement of §5.2: same hot-row population.
        from repro.dram.fast_model import analyze_trace
        from repro.mapping.intel import CoffeeLakeMapping
        from repro.workloads.spec import spec_trace

        trace = spec_trace("gcc", scale=0.03)

        def hot(mapping):
            mapped = mapping.translate_trace(trace.lines)
            return analyze_trace(
                mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank
            ).hot_rows(64)

        base = hot(CoffeeLakeMapping(config))
        horizontal = hot(HorizontalXorMapping(config))
        assert horizontal == pytest.approx(base, rel=0.1)

    def test_cache_key_distinguishes_keys(self, config):
        a = HorizontalXorMapping(config, seed=1)
        b = HorizontalXorMapping(config, seed=2)
        assert a.cache_key != b.cache_key


class TestGangStrideAttack:
    def test_pattern_spacing(self):
        trace = gang_stride_attack_trace(1 << 23, gangs=4, accesses=800, background_ratio=0)
        uniques = np.unique(trace.lines // np.uint64(1 << 23))
        assert len(uniques) == 4

    def test_background_interleaved(self):
        trace = gang_stride_attack_trace(1 << 23, accesses=800, background_ratio=7)
        # 1 in 8 accesses belong to the stride pattern.
        pattern = trace.lines[0::8]
        assert np.all(pattern % np.uint64(1 << 23) < 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            gang_stride_attack_trace(0)
        with pytest.raises(ValueError):
            gang_stride_attack_trace(8, background_ratio=-1)


class TestRobustness:
    def test_large_stride_exposed(self, config):
        mapping = LargeStrideMapping(config, gang_size=4)
        stride_lines = mapping.gang_stride_bytes // config.line_bytes
        report = mapping_robustness(
            config, mapping, adversarial_stride_lines=stride_lines, accesses=120_000
        )
        assert report.exposed
        assert report.concentration > 8

    def test_rubix_s_robust(self, config):
        mapping = RubixSMapping(config, gang_size=4)
        stride_lines = LargeStrideMapping(config, gang_size=4).gang_stride_bytes // 64
        report = mapping_robustness(
            config, mapping, adversarial_stride_lines=stride_lines, accesses=120_000
        )
        assert not report.exposed
        assert report.concentration < 3

    def test_report_properties(self):
        report = RobustnessReport("m", 0, 10, 1000, 100)
        assert report.concentration == 10.0
        assert report.exposed
