"""Unit tests for the trace container and Figure-4 kernels."""

import numpy as np
import pytest

from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel
from repro.workloads.trace import Trace, interleave


class TestTrace:
    def test_mpki(self):
        trace = Trace(name="t", lines=np.arange(100, dtype=np.uint64), instructions=50_000)
        assert trace.mpki == pytest.approx(2.0)

    def test_len(self):
        trace = Trace(name="t", lines=np.arange(7, dtype=np.uint64), instructions=100)
        assert len(trace) == 7

    def test_head(self):
        trace = Trace(name="t", lines=np.arange(100, dtype=np.uint64), instructions=1000)
        head = trace.head(10)
        assert len(head) == 10
        assert head.mpki == pytest.approx(trace.mpki, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Trace(name="t", lines=np.arange(3, dtype=np.uint64), instructions=0)
        with pytest.raises(ValueError):
            Trace(name="t", lines=np.arange(3, dtype=np.uint64), instructions=1, scale=0.0)
        with pytest.raises(ValueError):
            Trace(name="t", lines=np.arange(3, dtype=np.uint64), instructions=1).head(0)

    def test_dtype_coerced(self):
        trace = Trace(name="t", lines=np.array([1, 2, 3]), instructions=10)
        assert trace.lines.dtype == np.uint64


class TestInterleave:
    def test_preserves_order_within_stream(self):
        a = np.array([1, 2, 3], dtype=np.uint64)
        b = np.array([10, 20, 30], dtype=np.uint64)
        merged = interleave([a, b])
        pos_a = [np.where(merged == v)[0][0] for v in a]
        pos_b = [np.where(merged == v)[0][0] for v in b]
        assert pos_a == sorted(pos_a)
        assert pos_b == sorted(pos_b)

    def test_total_length(self):
        merged = interleave([np.arange(5), np.arange(7), np.arange(3)])
        assert merged.size == 15

    def test_proportional_mixing(self):
        a = np.zeros(1000, dtype=np.uint64)
        b = np.ones(1000, dtype=np.uint64)
        merged = interleave([a, b])
        # First fifth should contain both streams.
        head = merged[:400]
        assert 100 < head.sum() < 300

    def test_empty_inputs(self):
        assert interleave([]).size == 0
        assert interleave([np.empty(0, dtype=np.uint64)]).size == 0


class TestKernels:
    def test_stream_is_sequential(self):
        trace = stream_kernel(footprint_lines=64, accesses=200)
        assert trace.lines[:64].tolist() == list(range(64))
        assert trace.lines[64] == 0  # wraps

    def test_stride_hits_every_page_first(self):
        trace = stride_kernel(footprint_lines=64 * 16, accesses=32, stride_lines=64)
        assert trace.lines[:16].tolist() == [i * 64 for i in range(16)]
        # Second pass advances within each page.
        assert trace.lines[16] == 1

    def test_stride_validates_footprint(self):
        with pytest.raises(ValueError):
            stride_kernel(footprint_lines=100, accesses=10, stride_lines=64)

    def test_random_within_footprint(self):
        trace = random_kernel(footprint_lines=1000, accesses=5000, seed=3)
        assert int(trace.lines.max()) < 1000
        assert len(np.unique(trace.lines)) > 900

    def test_random_deterministic(self):
        a = random_kernel(accesses=100, seed=5)
        b = random_kernel(accesses=100, seed=5)
        assert np.array_equal(a.lines, b.lines)

    def test_base_line_offset(self):
        trace = stream_kernel(footprint_lines=16, accesses=16, base_line=1000)
        assert int(trace.lines.min()) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            stream_kernel(footprint_lines=0)
        with pytest.raises(ValueError):
            random_kernel(accesses=0)
