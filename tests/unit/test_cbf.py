"""Unit tests for the counting-Bloom-filter tracker."""

import pytest

from repro.mitigations.cbf import CountingBloomFilter, DualCBFTracker


class TestCountingBloomFilter:
    def test_estimate_never_undercounts(self):
        cbf = CountingBloomFilter(num_counters=64, num_hashes=3)
        true_counts = {}
        for i in range(500):
            row = i % 17
            true_counts[row] = true_counts.get(row, 0) + 1
            cbf.insert(row)
        for row, count in true_counts.items():
            assert cbf.estimate(row) >= count

    def test_exact_without_aliasing(self):
        cbf = CountingBloomFilter(num_counters=65536, num_hashes=4)
        for _ in range(10):
            cbf.insert(42)
        assert cbf.estimate(42) == 10

    def test_untouched_row_estimate_small(self):
        cbf = CountingBloomFilter(num_counters=4096, num_hashes=4)
        for i in range(100):
            cbf.insert(i)
        assert cbf.estimate(999_999) <= 2  # aliasing bounded

    def test_clear(self):
        cbf = CountingBloomFilter(num_counters=64)
        cbf.insert(1)
        cbf.clear()
        assert cbf.estimate(1) == 0

    def test_insert_returns_estimate(self):
        cbf = CountingBloomFilter(num_counters=1024)
        assert cbf.insert(7) == 1
        assert cbf.insert(7) == 2

    def test_storage(self):
        assert CountingBloomFilter(num_counters=1024).storage_bytes == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(num_counters=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(num_counters=8, num_hashes=0)


class TestDualCBFTracker:
    def test_triggers_at_threshold(self):
        tracker = DualCBFTracker(threshold=5, num_counters=4096)
        fired = [tracker.observe(3) for _ in range(10)]
        assert not any(fired[:4])
        assert all(fired[4:])  # blacklist semantics: stays flagged

    def test_never_misses_a_heavy_row(self):
        tracker = DualCBFTracker(threshold=10, num_counters=1024)
        fired = False
        for i in range(200):
            fired |= tracker.observe(999) if i % 2 == 0 else tracker.observe(i)
        assert fired

    def test_epoch_rotation_ages_out_counts(self):
        tracker = DualCBFTracker(threshold=100, num_counters=512, epoch_activations=50)
        for _ in range(60):
            tracker.observe(5)
        assert tracker.rotations >= 1
        # After a rotation the standby filter only has the most recent
        # epoch's inserts; estimates drop but never below the true
        # recent count.
        assert tracker.estimate(5) <= 60

    def test_reset(self):
        tracker = DualCBFTracker(threshold=3, num_counters=256)
        tracker.observe(1)
        tracker.reset()
        assert tracker.estimate(1) == 0

    def test_storage_two_filters(self):
        tracker = DualCBFTracker(threshold=3, num_counters=1024)
        assert tracker.storage_bytes == 2 * 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            DualCBFTracker(threshold=3, epoch_activations=0)


class TestBlockhammerCBFIntegration:
    def test_cbf_blockhammer_throttles_at_least_as_much(self):
        from repro.dram.config import DRAMConfig, Coordinate
        from repro.mitigations.blockhammer import Blockhammer

        config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)
        ideal = Blockhammer(config, 128, tracker_kind="ideal")
        cbf = Blockhammer(config, 128, tracker_kind="cbf", cbf_counters=256)
        coord = Coordinate(0, 0, 0, 9, 0)
        for i in range(100):
            ideal.on_activation(coord, i * 50e-9)
            cbf.on_activation(coord, i * 50e-9)
        # CBF estimates are upper bounds, so throttling starts no later.
        assert cbf.throttled_activations >= ideal.throttled_activations

    def test_invalid_tracker_kind(self):
        from repro.dram.config import DRAMConfig
        from repro.mitigations.blockhammer import Blockhammer

        config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)
        with pytest.raises(ValueError):
            Blockhammer(config, 128, tracker_kind="magic")
