"""Unit tests for the detailed memory system."""

import pytest

from repro.dram.config import DRAMConfig
from repro.dram.memory_system import MemorySystem, MitigationAction, Request
from repro.dram.page_policy import ClosedPagePolicy, OpenAdaptivePolicy
from repro.dram.scheduler import FCFSScheduler
from repro.mapping.linear import LinearMapping


@pytest.fixture()
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=256)


@pytest.fixture()
def system(config):
    return MemorySystem(config, LinearMapping(config))


class TestSingleAccess:
    def test_first_access_activates(self, system):
        result = system.access(0, 0.0)
        assert result.activated
        assert system.stats.activations == 1

    def test_same_row_hits(self, system, config):
        system.access(0, 0.0)
        result = system.access(1, 1e-6)  # adjacent line, same row
        assert not result.activated
        assert system.stats.hits == 1

    def test_conflict_reactivates(self, system, config):
        lines_per_row = config.lines_per_row
        banks = config.banks
        system.access(0, 0.0)
        # Same bank, next row: linear layout strides by banks*lines_per_row.
        other = lines_per_row * banks
        result = system.access(other, 1e-6)
        assert result.activated

    def test_histogram_tracks_rows(self, system):
        system.access(0, 0.0)
        system.access(0, 1e-6)
        assert system.stats.max_row_activations() == 1


class TestPagePolicies:
    def test_closed_page_always_activates(self, config):
        system = MemorySystem(
            config, LinearMapping(config), page_policy=ClosedPagePolicy()
        )
        now = 0.0
        for _ in range(5):
            now = system.access(0, now + 1e-6).completion
        # Closed page: budget of 1 access per activation.
        assert system.stats.activations == 5

    def test_open_adaptive_budget(self, config):
        system = MemorySystem(
            config, LinearMapping(config), page_policy=OpenAdaptivePolicy(limit=4)
        )
        now = 0.0
        for _ in range(9):
            now = system.access(0, now + 1e-6).completion
        # ACT at accesses 1, 5, 9.
        assert system.stats.activations == 3


class TestRunTrace:
    def test_fcfs_order_preserved(self, config):
        system = MemorySystem(config, LinearMapping(config), scheduler=FCFSScheduler())
        requests = [Request(line_addr=i, arrival=i * 1e-7) for i in range(20)]
        results = system.run_trace(requests, collect_results=True)
        assert [r.line_addr for r in results] == list(range(20))

    def test_frfcfs_prefers_row_hits(self, config):
        system = MemorySystem(config, LinearMapping(config), queue_depth=4)
        row_stride = config.lines_per_row * config.banks
        # Open row 0 (line 0), then queue a conflicting row and a hit.
        requests = [
            Request(line_addr=0, arrival=0.0),
            Request(line_addr=row_stride, arrival=1e-9),  # conflict
            Request(line_addr=1, arrival=2e-9),  # hit on open row
        ]
        results = system.run_trace(requests, collect_results=True)
        served = [r.line_addr for r in results]
        # FR-FCFS serves the row hit (line 1) before the conflict.
        assert served.index(1) < served.index(row_stride)

    def test_all_requests_served(self, config):
        system = MemorySystem(config, LinearMapping(config))
        requests = [Request(line_addr=i * 7, arrival=i * 1e-8) for i in range(100)]
        results = system.run_trace(requests, collect_results=True)
        assert len(results) == 100
        assert system.stats.accesses == 100

    def test_latency_nonnegative(self, config):
        system = MemorySystem(config, LinearMapping(config))
        requests = [Request(line_addr=i, arrival=0.0) for i in range(10)]
        for result in system.run_trace(requests, collect_results=True):
            assert result.latency >= 0


class _StallMitigation:
    """Test double: stalls the channel a fixed time on every activation."""

    def __init__(self, stall, blocks_channel=True):
        self.stall = stall
        self.blocks_channel = blocks_channel
        self.window_resets = 0

    def redirect(self, coord):
        return coord

    def on_activation(self, coord, now):
        return MitigationAction(stall_s=self.stall, blocks_channel=self.blocks_channel)

    def on_refresh_window(self):
        self.window_resets += 1


class TestMitigationHook:
    def test_stall_charged(self, config):
        mitigation = _StallMitigation(1e-6)
        system = MemorySystem(config, LinearMapping(config), mitigation=mitigation)
        result = system.access(0, 0.0)
        assert result.mitigation_stall == pytest.approx(1e-6)
        assert system.stats.mitigation_stall_s == pytest.approx(1e-6)

    def test_channel_block_delays_next(self, config):
        mitigation = _StallMitigation(1e-3)
        system = MemorySystem(config, LinearMapping(config), mitigation=mitigation)
        first = system.access(0, 0.0)
        # Next request to another bank still waits on the blocked channel.
        second = system.access(config.lines_per_row, first.completion - 1e-3 + 1e-9)
        assert second.start >= first.completion - 1e-12

    def test_non_blocking_stall_frees_channel(self, config):
        mitigation = _StallMitigation(1e-3, blocks_channel=False)
        system = MemorySystem(config, LinearMapping(config), mitigation=mitigation)
        first = system.access(0, 0.0)
        second = system.access(config.lines_per_row, 1e-6)
        assert second.start < first.completion

    def test_window_reset_propagates(self, config):
        mitigation = _StallMitigation(0.0)
        system = MemorySystem(config, LinearMapping(config), mitigation=mitigation)
        system.access(0, 0.0)
        system.access(config.lines_per_row * config.banks, 0.065)  # past tREFW
        assert mitigation.window_resets == 1

    def test_window_histogram_folds(self, config):
        system = MemorySystem(config, LinearMapping(config))
        system.access(0, 0.0)
        system.access(config.lines_per_row * config.banks, 0.065)
        assert system.stats.peak_window_row_acts == 1
        assert system.stats.max_row_activations() == 1


class TestValidation:
    def test_queue_depth_validated(self, config):
        with pytest.raises(ValueError):
            MemorySystem(config, LinearMapping(config), queue_depth=0)
