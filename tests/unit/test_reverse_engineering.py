"""Unit tests for the DRAMA-style reverse-engineering analysis."""

import pytest

from repro.analysis.reverse_engineering import (
    linearity_score,
    probe_same_bank,
    random_guess_baseline,
    recover_linear_bank_masks,
)
from repro.core.rubix_d import RubixDMapping
from repro.core.rubix_s import RubixSMapping
from repro.dram.config import DRAMConfig
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping


@pytest.fixture(scope="module")
def config():
    # Modest geometry keeps the probe loops fast.
    return DRAMConfig(channels=1, ranks=1, banks=16, rows_per_bank=4096)


class TestOracle:
    def test_probe_consistent_with_translation(self, config):
        mapping = CoffeeLakeMapping(config)
        assert probe_same_bank(mapping, 0, 1)  # same row, same bank
        # Lines in different bank fields.
        other = 1 << (config.col_bits)  # flips a bank-field bit
        assert not probe_same_bank(mapping, 0, other * 128)


@pytest.mark.parametrize(
    "mapping_cls", [LinearMapping, CoffeeLakeMapping, SkylakeMapping, MOPMapping]
)
def test_linear_mappings_fully_recovered(config, mapping_cls):
    mapping = mapping_cls(config)
    model = recover_linear_bank_masks(mapping, samples=2048)
    score = linearity_score(mapping, model, samples=1024)
    assert score == pytest.approx(1.0)


def test_rubix_s_resists_linear_recovery(config):
    mapping = RubixSMapping(config, gang_size=4, seed=1)
    model = recover_linear_bank_masks(mapping, samples=2048)
    score = linearity_score(mapping, model, samples=1024)
    baseline = random_guess_baseline(config)
    # No linear structure: prediction accuracy collapses toward chance.
    assert score < 8 * baseline
    assert score < 0.5


def test_rubix_d_not_globally_linear(config):
    mapping = RubixDMapping(config, gang_size=4, seed=2)
    model = recover_linear_bank_masks(mapping, samples=2048)
    score = linearity_score(mapping, model, samples=1024)
    # Per-v-group keys make the global function a keyed mux: one linear
    # model cannot capture all 32 groups.
    assert score < 0.9


def test_recovered_masks_match_known_layout(config):
    # For the linear mapping the bank field is bits [col_bits,
    # col_bits+4): the recovered masks must be exactly those bits.
    mapping = LinearMapping(config)
    model = recover_linear_bank_masks(mapping, samples=2048)
    for bit, mask_value in enumerate(model.masks):
        assert mask_value == 1 << (config.col_bits + bit)
        assert model.constants[bit] == 0
