"""Unit tests for the baseline address mappings."""

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, baseline_config, multichannel_config
from repro.mapping.base import FieldDecodeMapping, fields_from_segments
from repro.mapping.intel import CoffeeLakeMapping, SkylakeMapping
from repro.mapping.linear import LinearMapping
from repro.mapping.mop import MOPMapping
from repro.mapping.stride import LargeStrideMapping

ALL_MAPPINGS = [
    LinearMapping,
    CoffeeLakeMapping,
    SkylakeMapping,
    MOPMapping,
    LargeStrideMapping,
]


@pytest.fixture(scope="module")
def config():
    return baseline_config()


class TestFieldSpecValidation:
    def test_segments_must_cover_address(self, config):
        with pytest.raises(ValueError):
            fields_from_segments(config, [("col", 7), ("bank", 4), ("row", 16)])

    def test_unknown_field_rejected(self, config):
        with pytest.raises(ValueError):
            fields_from_segments(config, [("colour", 28)])

    def test_field_width_mismatch_rejected(self, config):
        spec = fields_from_segments(
            config,
            [("col", 7), ("bank", 4), ("rank", 0), ("channel", 0), ("row", 17)],
        )
        spec["col"] = spec["col"][:-1]  # drop a bit
        with pytest.raises(ValueError):
            FieldDecodeMapping(config, spec)


@pytest.mark.parametrize("mapping_cls", ALL_MAPPINGS)
class TestCommonMappingProperties:
    def test_translate_inverse_roundtrip(self, mapping_cls, config):
        mapping = mapping_cls(config)
        for line in (0, 1, 127, 128, 8191, 123_456_789, config.total_lines - 1):
            assert mapping.inverse(mapping.translate(line)) == line

    def test_scalar_matches_vectorized(self, mapping_cls, config, rng):
        mapping = mapping_cls(config)
        lines = rng.integers(0, config.total_lines, 500, dtype=np.uint64)
        mapped = mapping.translate_trace(lines)
        for i in (0, 100, 499):
            coord = mapping.translate(int(lines[i]))
            assert config.flat_bank(coord) == int(mapped.flat_bank[i])
            assert coord.row == int(mapped.row[i])
            assert coord.col == int(mapped.col[i])

    def test_bijective_on_sample(self, mapping_cls, config, rng):
        mapping = mapping_cls(config)
        lines = np.unique(rng.integers(0, config.total_lines, 5000, dtype=np.uint64))
        mapped = mapping.translate_trace(lines)
        keys = mapped.global_row * np.int64(config.lines_per_row) + mapped.col.astype(
            np.int64
        )
        assert len(np.unique(keys)) == len(lines)

    def test_out_of_range_rejected(self, mapping_cls, config):
        mapping = mapping_cls(config)
        with pytest.raises(ValueError):
            mapping.translate(config.total_lines)
        with pytest.raises(ValueError):
            mapping.translate(-1)


class TestCoffeeLake:
    def test_128_consecutive_lines_share_row(self, config):
        mapping = CoffeeLakeMapping(config)
        rows = {config.global_row(mapping.translate(line)) for line in range(128)}
        assert len(rows) == 1

    def test_next_128_lines_different_location(self, config):
        mapping = CoffeeLakeMapping(config)
        first = config.global_row(mapping.translate(0))
        second = config.global_row(mapping.translate(128))
        assert first != second

    def test_bank_hash_spreads_strided_rows(self, config):
        # Rows at a power-of-two stride should not all land in one bank.
        mapping = CoffeeLakeMapping(config)
        stride = 128 * 16  # one per (row, bank-field) step
        banks = {
            mapping.translate(i * stride * 16).bank for i in range(64)
        }
        assert len(banks) > 1


class TestSkylake:
    def test_pairs_alternate_between_two_banks(self, config):
        mapping = SkylakeMapping(config)
        banks = [mapping.translate(line).bank for line in range(8)]
        # lines 0,1 -> bank A; 2,3 -> bank B; 4,5 -> A; 6,7 -> B.
        assert banks[0] == banks[1] == banks[4] == banks[5]
        assert banks[2] == banks[3] == banks[6] == banks[7]
        assert banks[0] != banks[2]

    def test_32_lines_of_page_per_row(self, config):
        mapping = SkylakeMapping(config)
        rows = {}
        for line in range(64):  # one 4 KB page
            coord = mapping.translate(line)
            rows.setdefault(config.global_row(coord), []).append(line)
        assert sorted(len(v) for v in rows.values()) == [32, 32]

    def test_four_consecutive_pages_share_rows(self, config):
        mapping = SkylakeMapping(config)
        rows_page0 = {config.global_row(mapping.translate(line)) for line in range(64)}
        rows_page3 = {
            config.global_row(mapping.translate(line)) for line in range(192, 256)
        }
        assert rows_page0 == rows_page3


class TestMOP:
    def test_four_lines_per_page_per_row(self, config):
        mapping = MOPMapping(config)
        rows = {}
        for line in range(64):  # one page
            coord = mapping.translate(line)
            rows.setdefault(config.global_row(coord), []).append(line)
        # 16 chunks of 4 lines round-robined across 16 banks.
        assert all(len(v) == 4 for v in rows.values())
        assert len(rows) == 16

    def test_consecutive_pages_share_rows(self, config):
        mapping = MOPMapping(config)
        rows_p0 = {config.global_row(mapping.translate(line)) for line in range(0, 4)}
        rows_p1 = {
            config.global_row(mapping.translate(line)) for line in range(64, 68)
        }
        assert rows_p0 == rows_p1


class TestLargeStride:
    def test_gang_stays_together(self, config):
        mapping = LargeStrideMapping(config, gang_size=4)
        rows = {config.global_row(mapping.translate(line)) for line in range(4)}
        assert len(rows) == 1

    def test_row_gangs_are_far_apart(self, config):
        mapping = LargeStrideMapping(config, gang_size=4)
        assert mapping.gang_stride_bytes == 512 * 1024 * 1024
        base = config.global_row(mapping.translate(0))
        far = config.global_row(
            mapping.translate(mapping.gang_stride_bytes // config.line_bytes)
        )
        assert base == far  # the 512MB-distant gang co-resides

    def test_nearby_gangs_do_not_share_row(self, config):
        mapping = LargeStrideMapping(config, gang_size=4)
        near = config.global_row(mapping.translate(4))
        assert near != config.global_row(mapping.translate(0))

    def test_invalid_gang_rejected(self, config):
        with pytest.raises(ValueError):
            LargeStrideMapping(config, gang_size=0)


class TestMultichannelLayouts:
    @pytest.mark.parametrize("mapping_cls", [CoffeeLakeMapping, SkylakeMapping, MOPMapping])
    def test_channels_used(self, mapping_cls):
        config = multichannel_config(2)
        mapping = mapping_cls(config)
        lines = np.arange(1024, dtype=np.uint64)
        mapped = mapping.translate_trace(lines)
        banks = mapped.flat_bank
        # Flat bank ids must span both channels' bank ranges.
        assert int(banks.max()) >= config.banks
        assert int(banks.min()) < config.banks

    def test_coffeelake_stripes_gangs_across_channels(self):
        config = multichannel_config(2)
        mapping = CoffeeLakeMapping(config)
        ch = [mapping.translate(line).channel for line in range(8)]
        assert ch[:4] == [ch[0]] * 4  # a gang of 4 stays in a channel
        assert ch[4] != ch[0]  # the next gang switches
