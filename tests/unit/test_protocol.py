"""Unit tests for the command-level DDR4 protocol engine."""

import numpy as np
import pytest

from repro.dram.commands import Command, CommandType, ProtocolTiming
from repro.dram.config import Coordinate, DRAMConfig
from repro.dram.protocol import ProtocolEngine
from repro.mapping.linear import LinearMapping


@pytest.fixture()
def config():
    return DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)


@pytest.fixture()
def engine(config):
    return ProtocolEngine(config, collect_commands=True)


def _coord(row, bank=0, col=0):
    return Coordinate(channel=0, rank=0, bank=bank, row=row, col=col)


class TestTimingValidation:
    def test_default_set_valid(self):
        ProtocolTiming().validate()

    def test_inconsistent_ras_rc_rejected(self):
        with pytest.raises(ValueError):
            ProtocolTiming(t_ras=50e-9, t_rp=20e-9, t_rc=45e-9).validate()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ProtocolTiming(t_rcd=0.0).validate()

    def test_command_str(self):
        cmd = Command(CommandType.ACT, 0, 0, 1, 5, 0, 10e-9)
        assert "ACT" in str(cmd)


class TestRowBufferBehaviour:
    def test_first_access_activates(self, engine):
        outcome = engine.access(_coord(5), 0.0)
        assert outcome.activated
        t = engine.timing
        assert outcome.latency == pytest.approx(t.t_rcd + t.t_cl + t.t_burst, rel=0.01)

    def test_hit_skips_activation(self, engine):
        first = engine.access(_coord(5), 0.0)
        second = engine.access(_coord(5, col=1), first.data_ready)
        assert not second.activated
        assert second.latency < first.latency

    def test_conflict_pays_precharge(self, engine):
        first = engine.access(_coord(5), 0.0)
        second = engine.access(_coord(6), first.data_ready)
        assert second.activated
        assert engine.counts[CommandType.PRE] == 1
        assert second.latency > first.latency

    def test_open_adaptive_budget(self, config):
        engine = ProtocolEngine(config, max_hits=4)
        now = 0.0
        for _ in range(9):
            outcome = engine.access(_coord(7), now)
            now = outcome.data_ready + 1e-9
        assert engine.activations == 3  # ACT at 1, 5, 9


class TestRankConstraints:
    def test_tras_delays_early_precharge(self, engine):
        t = engine.timing
        first = engine.access(_coord(5), 0.0)
        # Conflict immediately: the PRE must wait for tRAS after the ACT.
        second = engine.access(_coord(6), first.data_ready)
        act_cmds = [c for c in engine.commands if c.kind is CommandType.ACT]
        pre_cmds = [c for c in engine.commands if c.kind is CommandType.PRE]
        assert pre_cmds[0].issue_time >= act_cmds[0].issue_time + t.t_ras - 1e-12
        assert act_cmds[1].issue_time >= act_cmds[0].issue_time + t.t_rc - 1e-12

    def test_trrd_spaces_cross_bank_acts(self, engine):
        t = engine.timing
        engine.access(_coord(5, bank=0), 0.0)
        engine.access(_coord(5, bank=1), 0.0)
        acts = [c for c in engine.commands if c.kind is CommandType.ACT]
        assert acts[1].issue_time - acts[0].issue_time >= t.t_rrd - 1e-12

    def test_tfaw_limits_act_bursts(self, config):
        engine = ProtocolEngine(config, collect_commands=True)
        t = engine.timing
        for bank in range(4):
            engine.access(_coord(10 + bank, bank=bank), 0.0)
        # A fifth ACT in the same rank must wait out the 4-ACT window.
        engine.access(_coord(99, bank=0), 0.0)
        acts = sorted(
            c.issue_time for c in engine.commands if c.kind is CommandType.ACT
        )
        assert acts[4] >= acts[0] + t.t_faw - 1e-12


class TestRefresh:
    def test_refresh_issued_every_trefi(self, config):
        engine = ProtocolEngine(config)
        # Walk time past several tREFI intervals.
        row = 0
        for step in range(5):
            engine.access(_coord(row + step), step * 20e-6)
        assert engine.refreshes >= 10  # 80us / 7.8us

    def test_refresh_closes_rows(self, config):
        engine = ProtocolEngine(config)
        engine.access(_coord(5), 0.0)
        outcome = engine.access(_coord(5), 20e-6)  # after a refresh
        assert outcome.activated  # the refresh closed the row

    def test_no_refresh_in_short_run(self, config):
        engine = ProtocolEngine(config)
        engine.access(_coord(5), 0.0)
        assert engine.refreshes == 0


class TestDataBus:
    def test_bursts_serialize_on_channel(self, engine):
        t = engine.timing
        engine.access(_coord(5, bank=0), 0.0)
        engine.access(_coord(5, bank=1), 0.0)
        reads = [c for c in engine.commands if c.kind is CommandType.RD]
        assert reads[1].issue_time - reads[0].issue_time >= t.t_burst - 1e-12

    def test_write_recovery_delays_precharge(self, engine):
        t = engine.timing
        first = engine.access(_coord(5), 0.0, is_write=True)
        engine.access(_coord(6), first.data_ready)
        pre = [c for c in engine.commands if c.kind is CommandType.PRE][0]
        assert pre.issue_time >= first.data_ready + t.t_wr - 1e-12


class TestRunTrace:
    def test_stats_consistent(self, config):
        engine = ProtocolEngine(config)
        mapping = LinearMapping(config)
        lines = np.arange(500, dtype=np.uint64)
        stats = engine.run_trace(mapping, lines)
        assert stats.accesses == 500
        assert stats.reads == 500
        assert stats.activations + 0 <= 500
        assert 0 <= stats.hit_rate <= 1
        assert stats.makespan_s > 0

    def test_write_mix(self, config):
        engine = ProtocolEngine(config)
        mapping = LinearMapping(config)
        stats = engine.run_trace(mapping, np.arange(100, dtype=np.uint64), write_every=4)
        assert stats.writes == 25
        assert stats.reads == 75

    def test_sequential_trace_mostly_hits(self, config):
        engine = ProtocolEngine(config)
        mapping = LinearMapping(config)
        stats = engine.run_trace(mapping, np.arange(1000, dtype=np.uint64))
        assert stats.hit_rate > 0.85
