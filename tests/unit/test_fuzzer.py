"""Unit tests for the playbook sweep fuzzer."""

import pytest

from repro.errors import WorkloadConfigError
from repro.experiments.common import clear_caches, validate_workload
from repro.workloads.attacks import double_sided_spec, half_double_spec
from repro.workloads.fuzzer import (
    FuzzConfig,
    expand_sweep,
    fuzz,
    parse_axis,
    set_path,
)
from repro.workloads.playbook import workload_name_for


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestParseAxis:
    def test_range_string(self):
        assert parse_axis("16:65:16") == [16, 32, 48, 64]

    def test_explicit_list(self):
        assert parse_axis([5, 3, 9]) == [5, 3, 9]

    @pytest.mark.parametrize("bad", [[], 7, None])
    def test_rejects_bad_axes(self, bad):
        with pytest.raises(ValueError):
            parse_axis(bad)


class TestSetPath:
    def base(self):
        return half_double_spec(far_activations=100, near_every=10)

    def test_top_level(self):
        spec = self.base()
        out = set_path(spec, "rounds", 7)
        assert out["rounds"] == 7
        assert spec["rounds"] == 100  # deep copy, base untouched

    def test_list_index(self):
        out = set_path(self.base(), "near_injections.0.every", 6)
        assert out["near_injections"][0]["every"] == 6
        assert out["near_injections"][1]["every"] == 20

    def test_missing_key_fails_loudly(self):
        with pytest.raises(ValueError, match="not present in the base spec"):
            set_path(self.base(), "rownds", 7)

    def test_bad_list_index(self):
        with pytest.raises(ValueError, match="out of range"):
            set_path(self.base(), "near_injections.5.every", 6)
        with pytest.raises(ValueError, match="list index"):
            set_path(self.base(), "near_injections.first.every", 6)

    def test_cannot_descend_into_scalar(self):
        with pytest.raises(ValueError, match="cannot descend"):
            set_path(self.base(), "rounds.deeper", 6)


class TestExpandSweep:
    def test_cartesian_grid_in_sorted_axis_order(self):
        base = double_sided_spec()
        cells = expand_sweep(base, {"rounds": [1, 2], "bank": [0, 3]})
        overrides = [o for o, _ in cells]
        # 'bank' sorts before 'rounds'; each axis in given value order.
        assert overrides == [
            {"bank": 0, "rounds": 1},
            {"bank": 0, "rounds": 2},
            {"bank": 3, "rounds": 1},
            {"bank": 3, "rounds": 2},
        ]
        assert cells[3][1]["bank"] == 3 and cells[3][1]["rounds"] == 2

    def test_every_cell_is_validated_up_front(self):
        base = double_sided_spec()
        with pytest.raises(ValueError, match="rounds"):
            expand_sweep(base, {"rounds": [4, 0]})

    def test_needs_at_least_one_axis(self):
        with pytest.raises(ValueError, match="at least one axis"):
            expand_sweep(double_sided_spec(), {})


class TestValidateWorkload:
    def test_playbook_names_validate_structurally(self):
        name = workload_name_for(double_sided_spec())
        assert validate_workload(name) == name

    def test_malformed_json_is_a_workload_error(self):
        with pytest.raises(WorkloadConfigError, match="bad playbook workload"):
            validate_workload("playbook:notjson")

    def test_bad_spec_is_a_workload_error(self):
        with pytest.raises(WorkloadConfigError, match="bad playbook workload"):
            validate_workload('playbook:{"pattern":"zigzag","rows":[1,2]}')

    def test_bad_target_mapping_is_a_workload_error(self):
        spec = double_sided_spec()
        spec["target_mapping"] = "pentium"
        with pytest.raises(WorkloadConfigError, match="target_mapping"):
            validate_workload(workload_name_for(spec))


class TestFuzz:
    SWEEP = {"rounds": [16, 64, 256]}

    def config(self, **kw):
        kw.setdefault("min_hot_rows", 2)
        return FuzzConfig(**kw)

    def test_finds_known_minimal_pattern(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        result = fuzz(base, self.SWEEP, config=self.config())
        assert [c["overrides"]["rounds"] for c in result.hot_cells] == [64, 256]
        assert result.seed_overrides == {"rounds": 64}
        assert result.minimal_overrides == {"rounds": 64}
        assert result.minimal_spec["rounds"] == 64
        assert int(result.minimal_record["hot_rows_64"]) >= 2
        assert result.probes == 1  # one binary-search probe (16: cold)
        assert result.skipped_cells == 0

    def test_fully_deterministic(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        a = fuzz(base, self.SWEEP, config=self.config())
        b = fuzz(base, self.SWEEP, config=self.config())
        assert a.minimal_overrides == b.minimal_overrides
        assert a.probes == b.probes
        assert [c["record"] for c in a.cells] == [c["record"] for c in b.cells]

    def test_cold_grid_has_no_minimal(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        result = fuzz(base, {"rounds": [2, 4]}, config=self.config())
        assert result.hot_cells == []
        assert result.seed_overrides is None
        assert result.minimal_overrides is None
        assert result.minimal_spec is None
        assert result.probes == 0

    def test_duplicate_cells_share_one_record(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        result = fuzz(base, {"rounds": [64, 64]}, config=self.config())
        assert len(result.cells) == 2
        assert result.cells[0]["record"] == result.cells[1]["record"]

    def test_max_cells_subsamples_deterministically(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        config = self.config(max_cells=2, seed=3)
        a = fuzz(base, self.SWEEP, config=config)
        b = fuzz(base, self.SWEEP, config=config)
        assert len(a.cells) == 2 and a.skipped_cells == 1
        assert [c["overrides"] for c in a.cells] == [c["overrides"] for c in b.cells]

    def test_parallel_matches_serial(self):
        base = double_sided_spec(victim_row=1000, activations_per_side=16)
        serial = fuzz(base, self.SWEEP, config=self.config(workers=1))
        parallel = fuzz(base, self.SWEEP, config=self.config(workers=2))
        assert [c["record"] for c in parallel.cells] == [
            c["record"] for c in serial.cells
        ]
        assert parallel.minimal_overrides == serial.minimal_overrides
