"""Unit tests for the content-keyed window-statistics cache."""

import numpy as np
import pytest

from repro.dram.fast_model import TraceStats
from repro.parallel import StatsCache, default_persist_dir, stats_cache_key
from repro.parallel.cache import STATS_CACHE_ENV


def _stats(activations=100, hits=50, detail=False):
    acts = np.array([60, 40], dtype=np.int64)
    return TraceStats(
        n_accesses=activations + hits,
        n_activations=activations,
        n_hits=hits,
        row_ids=np.array([3, 9], dtype=np.int64),
        acts_per_row=acts,
        unique_rows_touched=2,
        act_rows=np.array([3, 9], dtype=np.int64) if detail else None,
        act_cols=None,
    )


BASE_KEY_ARGS = dict(
    trace_key=("gcc", 0.5, 100_000, "abcd" * 8, 2024),
    mapping_key="rubix-s|gs4|seed2024",
    rows_per_bank=65_536,
    max_hits=4,
)


class TestKey:
    def test_stable(self):
        assert stats_cache_key(**BASE_KEY_ARGS) == stats_cache_key(**BASE_KEY_ARGS)

    def test_filename_safe_hex(self):
        key = stats_cache_key(**BASE_KEY_ARGS)
        assert key == key.lower() and int(key, 16) >= 0
        assert len(key) == 40  # blake2b-20 hex

    @pytest.mark.parametrize(
        "override",
        [
            {"trace_key": ("gcc", 0.5, 100_000, "dcba" * 8, 2024)},  # content
            {"trace_key": ("gcc", 0.5, 100_000, "abcd" * 8, 9)},  # seed
            {"trace_key": ("mcf", 0.5, 100_000, "abcd" * 8, 2024)},  # name
            {"mapping_key": "rubix-s|gs2|seed2024"},
            {"rows_per_bank": 131_072},
            {"max_hits": None},
            {"chunk_lines": 4096},
        ],
    )
    def test_every_component_is_load_bearing(self, override):
        assert stats_cache_key(**{**BASE_KEY_ARGS, **override}) != stats_cache_key(
            **BASE_KEY_ARGS
        )


class TestMemoryLayer:
    def test_miss_then_hit_returns_same_objects(self):
        cache = StatsCache()
        key = stats_cache_key(**BASE_KEY_ARGS)
        assert cache.get(key) is None
        stats = _stats()
        cache.put(key, stats, 7)
        got = cache.get(key)
        assert got is not None
        assert got[0] is stats and got[1] == 7
        assert cache.hits == 1 and cache.misses == 1

    def test_len_and_contains(self):
        cache = StatsCache()
        key = stats_cache_key(**BASE_KEY_ARGS)
        assert key not in cache and len(cache) == 0
        cache.put(key, _stats(), 0)
        assert key in cache and len(cache) == 1
        cache.clear()
        assert len(cache) == 0


class TestDiskLayer:
    def test_round_trip_through_fresh_instance(self, tmp_path):
        key = stats_cache_key(**BASE_KEY_ARGS)
        writer = StatsCache(persist_dir=tmp_path)
        stats = _stats()
        writer.put(key, stats, 11)
        assert (tmp_path / f"{key}.npz").exists()

        reader = StatsCache(persist_dir=tmp_path)  # cold memory layer
        got = reader.get(key)
        assert got is not None
        loaded, swaps = got
        assert swaps == 11
        assert loaded.n_accesses == stats.n_accesses
        assert loaded.n_activations == stats.n_activations
        assert loaded.n_hits == stats.n_hits
        assert loaded.unique_rows_touched == stats.unique_rows_touched
        assert loaded.row_ids.tolist() == stats.row_ids.tolist()
        assert loaded.acts_per_row.tolist() == stats.acts_per_row.tolist()
        assert reader.disk_hits == 1
        # Promoted to memory: the second get is a memory hit.
        assert reader.get(key)[0] is loaded
        assert reader.hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        key = stats_cache_key(**BASE_KEY_ARGS)
        (tmp_path / f"{key}.npz").write_bytes(b"this is not an npz file")
        cache = StatsCache(persist_dir=tmp_path)
        assert cache.get(key) is None
        assert cache.misses == 1 and cache.disk_hits == 0

    def test_corrupt_entry_quarantined_not_reread(self, tmp_path):
        """A torn .npz is moved aside, counted, and never decoded twice."""
        key = stats_cache_key(**BASE_KEY_ARGS)
        entry = tmp_path / f"{key}.npz"
        entry.write_bytes(b"\x00torn write from a crashed producer")
        cache = StatsCache(persist_dir=tmp_path)
        assert cache.get(key) is None
        assert cache.corrupt == 1
        # The bad bytes survive for postmortems under a new name; the
        # original path is free for the recomputing writer.
        quarantined = tmp_path / f"{key}.npz.corrupt"
        assert not entry.exists() and quarantined.exists()
        assert quarantined.read_bytes().startswith(b"\x00torn")
        # The second lookup is a plain miss: no decode attempt, no
        # double count.
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.misses == 2

    def test_corrupt_metric_and_warning_emitted(self, tmp_path):
        from repro import obs

        key = stats_cache_key(**BASE_KEY_ARGS)
        (tmp_path / f"{key}.npz").write_bytes(b"garbage")
        obs.reset()
        obs.configure(enabled=True)
        try:
            assert StatsCache(persist_dir=tmp_path).get(key) is None
            assert obs.METRICS.counter_value("cache.corrupt") == 1
        finally:
            obs.reset()

    def test_quarantined_path_can_be_rewritten_and_read(self, tmp_path):
        key = stats_cache_key(**BASE_KEY_ARGS)
        (tmp_path / f"{key}.npz").write_bytes(b"garbage")
        cache = StatsCache(persist_dir=tmp_path)
        assert cache.get(key) is None  # quarantines
        cache.put(key, _stats(), 5)  # recompute persists cleanly
        fresh = StatsCache(persist_dir=tmp_path)
        got = fresh.get(key)
        assert got is not None and got[1] == 5
        assert fresh.corrupt == 0

    def test_stale_version_is_miss_without_quarantine(self, tmp_path):
        """A decodable entry from an older format is stale, not corrupt."""
        import numpy as np

        key = stats_cache_key(**BASE_KEY_ARGS)
        cache = StatsCache(persist_dir=tmp_path)
        cache.put(key, _stats(), 3)
        path = tmp_path / f"{key}.npz"
        with np.load(path) as bundle:
            scalars = bundle["scalars"].copy()
            row_ids, acts = bundle["row_ids"], bundle["acts_per_row"]
            scalars[5] = 999  # future format version
            np.savez_compressed(
                tmp_path / "tmp.npz", scalars=scalars, row_ids=row_ids, acts_per_row=acts
            )
        (tmp_path / "tmp.npz").replace(path)
        fresh = StatsCache(persist_dir=tmp_path)
        assert fresh.get(key) is None
        assert fresh.corrupt == 0 and path.exists()  # left in place

    def test_detail_bearing_stats_not_persisted(self, tmp_path):
        key = stats_cache_key(**BASE_KEY_ARGS)
        cache = StatsCache(persist_dir=tmp_path)
        cache.put(key, _stats(detail=True), 0)
        assert not (tmp_path / f"{key}.npz").exists()
        # Still served from memory, detail intact.
        assert cache.get(key)[0].act_rows is not None

    def test_unwritable_dir_never_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        cache = StatsCache(persist_dir=blocker)
        cache.put(stats_cache_key(**BASE_KEY_ARGS), _stats(), 0)  # must not raise

    def test_persist_to_attach_detach(self, tmp_path):
        cache = StatsCache()
        assert cache.persist_to(tmp_path) is cache
        key = stats_cache_key(**BASE_KEY_ARGS)
        cache.put(key, _stats(), 0)
        assert (tmp_path / f"{key}.npz").exists()
        cache.persist_to(None)
        assert cache.persist_dir is None

    def test_clear_can_drop_disk_entries(self, tmp_path):
        cache = StatsCache(persist_dir=tmp_path)
        cache.put(stats_cache_key(**BASE_KEY_ARGS), _stats(), 0)
        cache.clear(memory_only=False)
        assert not list(tmp_path.glob("*.npz"))


class TestEnvironment:
    def test_default_persist_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STATS_CACHE_ENV, raising=False)
        assert default_persist_dir() is None
        monkeypatch.setenv(STATS_CACHE_ENV, str(tmp_path))
        assert default_persist_dir() == str(tmp_path)
        monkeypatch.setenv(STATS_CACHE_ENV, "  ")
        assert default_persist_dir() is None
