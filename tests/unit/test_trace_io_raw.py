"""Raw memmap trace format (.rtr): zero-copy loads, strict validation.

Pins the zero-copy ingestion contract: loading never materializes the
line array (memmap view, pre-seeded fingerprint), the streaming
fingerprint is digest-identical to the in-memory one, and every way a
file can be malformed -- truncation, wrong byte order, bad magic,
unsupported version, unknown dtype code, corrupt metadata -- raises
:class:`~repro.errors.TraceFormatError` instead of a numpy crash.
"""

import json
import struct

import numpy as np
import pytest

from repro.errors import TraceFormatError, WorkloadConfigError
from repro.workloads.trace import FINGERPRINT_CHUNK_BYTES, Trace, lines_fingerprint
from repro.workloads.trace_io import (
    RAW_HEADER_BYTES,
    RAW_MAGIC,
    RawTraceWriter,
    load_trace,
    load_trace_raw,
    save_trace,
    save_trace_raw,
    sniff_format,
)


@pytest.fixture
def trace():
    rng = np.random.default_rng(42)
    lines = rng.integers(0, 1 << 28, size=50_000, dtype=np.uint64)
    return Trace(name="synthetic", lines=lines, instructions=10**6, scale=0.5, seed=42)


def _written(tmp_path, trace, name="t"):
    return save_trace_raw(trace, tmp_path / name)


# ---------------------------------------------------------------------------
# Round trip + zero copy
# ---------------------------------------------------------------------------
def test_roundtrip_preserves_everything(tmp_path, trace):
    path = _written(tmp_path, trace)
    assert path.suffix == ".rtr"
    loaded = load_trace_raw(path)
    assert loaded.name == trace.name
    assert loaded.instructions == trace.instructions
    assert loaded.window_s == trace.window_s
    assert loaded.scale == trace.scale
    assert loaded.seed == trace.seed
    assert loaded.lines.dtype == np.uint64
    assert np.array_equal(loaded.lines, trace.lines)


def test_load_is_zero_copy_memmap(tmp_path, trace):
    loaded = load_trace_raw(_written(tmp_path, trace))
    # The lines array is a view onto a memmap -- no bytes copied.
    assert not loaded.lines.flags.owndata
    base = loaded.lines
    while isinstance(base, np.ndarray) and base.base is not None:
        base = base.base
    import mmap

    assert isinstance(base, (np.memmap, mmap.mmap))


def test_stored_fingerprint_preseeds_memo(tmp_path, trace):
    expected = trace.fingerprint
    loaded = load_trace_raw(_written(tmp_path, trace))
    # Already present before any hashing could have run on the memmap...
    assert loaded._fingerprint == expected
    # ...and consistent with hashing the mapped bytes from scratch.
    assert lines_fingerprint(loaded.lines) == expected


def test_mmap_false_reads_into_memory(tmp_path, trace):
    import mmap

    loaded = load_trace_raw(_written(tmp_path, trace), mmap=False)
    base = loaded.lines
    while isinstance(base, np.ndarray) and base.base is not None:
        base = base.base
    assert not isinstance(base, (np.memmap, mmap.mmap))
    assert np.array_equal(loaded.lines, trace.lines)


def test_streaming_writer_matches_one_shot(tmp_path, trace):
    one_shot = _written(tmp_path, trace, "oneshot")
    with RawTraceWriter(
        tmp_path / "chunked",
        name=trace.name,
        instructions=trace.instructions,
        window_s=trace.window_s,
        scale=trace.scale,
        seed=trace.seed,
    ) as writer:
        for start in range(0, trace.lines.size, 7_001):
            writer.append(trace.lines[start : start + 7_001])
    assert (tmp_path / "chunked.rtr").read_bytes() == one_shot.read_bytes()


def test_empty_trace_roundtrip(tmp_path):
    with RawTraceWriter(tmp_path / "empty", name="empty", instructions=1) as writer:
        pass
    loaded = load_trace_raw(tmp_path / "empty.rtr")
    assert loaded.lines.size == 0
    assert loaded.fingerprint == lines_fingerprint(np.empty(0, dtype=np.uint64))


def test_writer_abort_leaves_nothing(tmp_path, trace):
    try:
        with RawTraceWriter(tmp_path / "gone", name="x", instructions=1) as writer:
            writer.append(trace.lines[:10])
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Streaming fingerprint == legacy in-memory digest
# ---------------------------------------------------------------------------
def test_streamed_digest_identical_to_in_memory(tmp_path, trace):
    """The regression the stats cache depends on: file-backed and
    in-memory copies of the same stream share one fingerprint."""
    import hashlib

    legacy = hashlib.blake2b(digest_size=16)
    legacy.update(str(trace.lines.size).encode())
    legacy.update(trace.lines.tobytes())
    assert trace.fingerprint == legacy.hexdigest()
    streamed = load_trace_raw(_written(tmp_path, trace))
    assert streamed.fingerprint == trace.fingerprint


def test_fingerprint_streams_across_chunk_boundary():
    n = FINGERPRINT_CHUNK_BYTES // 8 + 17  # straddles one chunk boundary
    lines = np.arange(n, dtype=np.uint64)
    import hashlib

    legacy = hashlib.blake2b(digest_size=16)
    legacy.update(str(n).encode())
    legacy.update(lines.tobytes())
    assert lines_fingerprint(lines) == legacy.hexdigest()


# ---------------------------------------------------------------------------
# Format sniffing
# ---------------------------------------------------------------------------
def test_load_trace_sniffs_both_formats(tmp_path, trace):
    raw = _written(tmp_path, trace)
    npz = save_trace(trace, tmp_path / "bundle")
    assert sniff_format(raw) == "raw"
    assert sniff_format(npz) == "npz"
    assert load_trace(raw).fingerprint == trace.fingerprint
    assert load_trace(npz).fingerprint == trace.fingerprint


def test_missing_file_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace_raw(tmp_path / "nope.rtr")


# ---------------------------------------------------------------------------
# Malformed files: typed errors, never numpy crashes
# ---------------------------------------------------------------------------
def _corrupt(tmp_path, trace, mutate, name="bad.rtr"):
    data = bytearray(_written(tmp_path, trace, "good").read_bytes())
    mutate(data)
    path = tmp_path / name
    path.write_bytes(bytes(data))
    return path


def test_truncated_data_is_diagnosed(tmp_path, trace):
    good = _written(tmp_path, trace)
    short = tmp_path / "short.rtr"
    short.write_bytes(good.read_bytes()[: RAW_HEADER_BYTES + 1000])
    with pytest.raises(TraceFormatError, match="truncated"):
        load_trace_raw(short)


def test_file_shorter_than_header_is_diagnosed(tmp_path):
    stub = tmp_path / "stub.rtr"
    stub.write_bytes(RAW_MAGIC)  # magic only, no header
    with pytest.raises(TraceFormatError, match="shorter than"):
        load_trace_raw(stub)


def test_wrong_endian_word_is_refused(tmp_path, trace):
    def flip_endian_word(data):
        data[12:16] = data[12:16][::-1]

    path = _corrupt(tmp_path, trace, flip_endian_word)
    with pytest.raises(TraceFormatError, match="byte order"):
        load_trace_raw(path)


def test_bad_magic_is_not_a_raw_trace(tmp_path, trace):
    def clobber_magic(data):
        data[:8] = b"NOTATRCE"

    path = _corrupt(tmp_path, trace, clobber_magic)
    with pytest.raises(TraceFormatError, match="magic"):
        load_trace_raw(path)
    # The sniffer routes it to the npz loader, which also diagnoses it.
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_unsupported_version_is_refused(tmp_path, trace):
    def bump_version(data):
        data[8:12] = struct.pack("<I", 99)

    path = _corrupt(tmp_path, trace, bump_version)
    with pytest.raises(TraceFormatError, match="version 99"):
        load_trace_raw(path)


def test_unknown_dtype_code_is_refused(tmp_path, trace):
    def set_dtype_code(data):
        data[16:20] = struct.pack("<I", 7)

    path = _corrupt(tmp_path, trace, set_dtype_code)
    with pytest.raises(TraceFormatError, match="dtype code 7"):
        load_trace_raw(path)


def test_corrupt_metadata_tail_is_diagnosed(tmp_path, trace):
    def scramble_meta(data):
        data[-10:] = b"\xff" * 10

    path = _corrupt(tmp_path, trace, scramble_meta)
    with pytest.raises(TraceFormatError, match="JSON"):
        load_trace_raw(path)


def test_missing_meta_keys_are_diagnosed(tmp_path, trace):
    good = _written(tmp_path, trace).read_bytes()
    n_lines, meta_len = struct.unpack("<QQ", good[24:40])
    meta = json.loads(good[RAW_HEADER_BYTES + 8 * n_lines :].decode())
    del meta["instructions"]
    new_meta = json.dumps(meta).encode()
    header = bytearray(good[:RAW_HEADER_BYTES])
    header[32:40] = struct.pack("<Q", len(new_meta))
    path = tmp_path / "nometa.rtr"
    path.write_bytes(bytes(header) + good[RAW_HEADER_BYTES : RAW_HEADER_BYTES + 8 * n_lines] + new_meta)
    with pytest.raises(TraceFormatError, match="missing required keys"):
        load_trace_raw(path)


# ---------------------------------------------------------------------------
# file: workloads
# ---------------------------------------------------------------------------
def test_file_workload_loads_raw_trace(tmp_path, trace):
    from repro.experiments.common import get_trace, validate_workload

    path = _written(tmp_path, trace)
    name = f"file:{path}"
    assert validate_workload(name) == name
    loaded = get_trace(name)
    assert loaded.fingerprint == trace.fingerprint


def test_file_workload_missing_path_fails_fast(tmp_path):
    from repro.experiments.common import validate_workload

    with pytest.raises(WorkloadConfigError, match="no file"):
        validate_workload(f"file:{tmp_path}/absent.rtr")
