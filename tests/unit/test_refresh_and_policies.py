"""Unit tests for refresh-window bookkeeping and page policies."""

import pytest

from repro.dram.page_policy import (
    ClosedPagePolicy,
    DEFAULT_POLICY,
    OpenAdaptivePolicy,
    OpenPagePolicy,
)
from repro.dram.refresh import RefreshWindow


class TestRefreshWindow:
    def test_no_boundary_within_window(self):
        window = RefreshWindow()
        assert window.advance(0.05) == 0
        assert window.window_index == 0

    def test_single_boundary(self):
        window = RefreshWindow()
        assert window.advance(0.065) == 1
        assert window.window_index == 1

    def test_multiple_boundaries(self):
        window = RefreshWindow()
        assert window.advance(0.2) == 3
        assert window.boundaries_crossed == pytest.approx([0.064, 0.128, 0.192])

    def test_incremental_advance(self):
        window = RefreshWindow()
        total = sum(window.advance(t) for t in (0.03, 0.07, 0.13, 0.13))
        assert total == 2

    def test_backwards_rejected(self):
        window = RefreshWindow()
        window.advance(0.2)
        with pytest.raises(ValueError):
            window.advance(0.1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RefreshWindow().advance(-1.0)

    def test_custom_period(self):
        window = RefreshWindow(period=0.01)
        assert window.advance(0.025) == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            RefreshWindow(period=0.0)


class TestPagePolicies:
    def test_open_page_unlimited(self):
        assert OpenPagePolicy().max_hits() is None

    def test_closed_page_single(self):
        assert ClosedPagePolicy().max_hits() == 1

    def test_open_adaptive_default_is_paper_value(self):
        assert DEFAULT_POLICY.max_hits() == 16

    def test_open_adaptive_custom(self):
        assert OpenAdaptivePolicy(limit=8).max_hits() == 8

    def test_open_adaptive_validates(self):
        with pytest.raises(ValueError):
            OpenAdaptivePolicy(limit=0)

    def test_names(self):
        assert "Open" in OpenPagePolicy().name()
