"""Unit tests for the composable synthetic workload builder."""

import numpy as np
import pytest

from repro.dram.config import baseline_config
from repro.dram.fast_model import analyze_trace
from repro.mapping.intel import CoffeeLakeMapping
from repro.workloads.synthetic import (
    ColdPool,
    HotSpots,
    PointerChase,
    SequentialScan,
    WorkloadBuilder,
)


def _analyze(trace):
    config = baseline_config()
    mapped = CoffeeLakeMapping(config).translate_trace(trace.lines)
    return analyze_trace(
        mapped.flat_bank, mapped.row, rows_per_bank=config.rows_per_bank, max_hits=16
    )


class TestComponents:
    def test_hotspots_create_hot_rows(self):
        trace = (
            WorkloadBuilder(seed=1)
            .add(HotSpots(rows=100, activations_per_row=100))
            .add(ColdPool(rows=5000, accesses_per_row=4))
            .build(name="hot")
        )
        stats = _analyze(trace)
        assert stats.hot_rows(64) == pytest.approx(100, abs=10)

    def test_scan_produces_hits(self):
        trace = (
            WorkloadBuilder(seed=2)
            .add(SequentialScan(rows=2000, accesses=200_000))
            .build(name="scan")
        )
        stats = _analyze(trace)
        assert stats.hit_rate > 0.8
        assert stats.hot_rows(64) == 0

    def test_cold_pool_touches_footprint(self):
        trace = (
            WorkloadBuilder(seed=3)
            .add(ColdPool(rows=10_000, accesses_per_row=6))
            .build(name="cold")
        )
        stats = _analyze(trace)
        assert stats.unique_rows_touched > 9_000
        assert stats.hot_rows(64) == 0

    def test_pointer_chase_no_locality(self):
        trace = (
            WorkloadBuilder(seed=4)
            .add(PointerChase(rows=4000, accesses=100_000))
            .build(name="chase")
        )
        stats = _analyze(trace)
        assert stats.hit_rate < 0.05

    def test_component_validation(self):
        with pytest.raises(ValueError):
            HotSpots(rows=0)
        with pytest.raises(ValueError):
            HotSpots(rows=1, active_lines=200)
        with pytest.raises(ValueError):
            SequentialScan(rows=1, accesses=10, burst=33)
        with pytest.raises(ValueError):
            ColdPool(rows=1, accesses_per_row=0)
        with pytest.raises(ValueError):
            PointerChase(rows=0, accesses=1)


class TestBuilder:
    def test_regions_disjoint(self):
        builder = (
            WorkloadBuilder(seed=5)
            .add(HotSpots(rows=32, activations_per_row=50))
            .add(SequentialScan(rows=100, accesses=5000))
        )
        trace = builder.build()
        hot_limit = HotSpots(rows=32, activations_per_row=50).lines_needed()
        hot_lines = trace.lines[trace.lines < hot_limit]
        scan_lines = trace.lines[trace.lines >= hot_limit]
        assert hot_lines.size > 0 and scan_lines.size > 0

    def test_deterministic(self):
        def build():
            return (
                WorkloadBuilder(seed=6)
                .add(HotSpots(rows=10, activations_per_row=30))
                .add(ColdPool(rows=100, accesses_per_row=3))
                .build()
            )

        assert np.array_equal(build().lines, build().lines)

    def test_mpki_sets_instructions(self):
        trace = (
            WorkloadBuilder(seed=7)
            .add(ColdPool(rows=100, accesses_per_row=5))
            .build(mpki=10.0)
        )
        assert trace.mpki == pytest.approx(10.0, rel=0.01)

    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder().build()

    def test_oversized_footprint_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder(line_addr_bits=12).add(ColdPool(rows=10_000)).build()

    def test_bursts_stay_contiguous(self):
        trace = (
            WorkloadBuilder(seed=8)
            .add(SequentialScan(rows=50, accesses=3200, burst=32))
            .add(ColdPool(rows=500, accesses_per_row=2))
            .build()
        )
        # Find a scan burst start (scan region is laid out first) and
        # check the next 31 accesses are its continuation.
        scan_limit = 50 * 128
        starts = np.where((trace.lines < scan_limit) & (trace.lines % 32 == 0))[0]
        index = int(starts[0])
        burst = trace.lines[index : index + 32]
        assert np.array_equal(burst, burst[0] + np.arange(32, dtype=np.uint64))

    def test_doctest_example(self):
        trace = (
            WorkloadBuilder(line_addr_bits=28, seed=7)
            .add(HotSpots(rows=500, activations_per_row=100))
            .add(SequentialScan(rows=20_000, accesses=400_000))
            .add(ColdPool(rows=50_000, accesses_per_row=4.0))
            .build(name="my-app", mpki=4.0)
        )
        assert trace.name == "my-app"
        stats = _analyze(trace)
        assert stats.hot_rows(64) >= 450
