"""Unit tests for the xor-based dynamic remap engine (Figure 10)."""

import numpy as np
import pytest

from repro.core.remap_engine import XorRemapEngine


def _assert_bijection(engine):
    layout = engine.physical_layout()
    assert sorted(layout.tolist()) == list(range(engine.space))


class TestTranslation:
    def test_fresh_engine_is_pure_xor(self):
        engine = XorRemapEngine(nbits=4, seed=1)
        for addr in range(16):
            assert engine.translate(addr) == addr ^ engine.curr_key

    def test_bijective_at_every_sweep_position(self):
        engine = XorRemapEngine(nbits=5, seed=2)
        _assert_bijection(engine)
        for _ in range(engine.space):
            engine.remap_step()
            _assert_bijection(engine)

    def test_array_matches_scalar(self):
        engine = XorRemapEngine(nbits=8, seed=3)
        for _ in range(57):
            engine.remap_step()
        addrs = np.arange(256, dtype=np.uint64)
        array_out = engine.translate(addrs)
        for addr in range(256):
            assert int(array_out[addr]) == engine.translate(addr)

    def test_domain_checked(self):
        engine = XorRemapEngine(nbits=4, seed=4)
        with pytest.raises(ValueError):
            engine.translate(16)
        with pytest.raises(ValueError):
            engine.translate(np.array([99], dtype=np.uint64))


class TestSweepSemantics:
    def test_full_epoch_applies_next_key(self):
        engine = XorRemapEngine(nbits=6, seed=5)
        expected_final_key = engine.curr_key ^ engine.next_key
        for _ in range(engine.space):
            engine.remap_step()
        assert engine.epochs_completed == 1
        assert engine.curr_key == expected_final_key
        assert engine.ptr == 0
        for addr in range(engine.space):
            assert engine.translate(addr) == addr ^ engine.curr_key

    def test_half_swaps_skipped(self):
        # Every location pairs with exactly one partner, so a sweep
        # performs space/2 swaps and skips the other half (Fig 10 e-h).
        engine = XorRemapEngine(nbits=6, seed=6)
        for _ in range(engine.space):
            engine.remap_step()
        assert engine.swaps_performed == engine.space // 2
        assert engine.swaps_skipped == engine.space // 2

    def test_figure10_example(self):
        # Mirror Fig 10: after the first remap episode, the logical line
        # whose translated position was 0 now maps to 0 ^ nextKey.
        engine = XorRemapEngine(nbits=3, seed=7)
        logical_at_zero = engine.curr_key  # translate(curr_key) == 0
        nxt = engine.next_key
        engine.remap_step()
        assert engine.translate(logical_at_zero) == nxt
        # ... and the partner moved into position 0.
        partner_logical = engine.curr_key ^ nxt
        assert engine.translate(partner_logical) == 0

    def test_remap_steps_returns_swaps(self):
        engine = XorRemapEngine(nbits=6, seed=8)
        swaps = engine.remap_steps(engine.space)
        assert swaps == engine.space // 2

    def test_remap_steps_validates(self):
        with pytest.raises(ValueError):
            XorRemapEngine(nbits=4, seed=9).remap_steps(-1)


class TestHousekeeping:
    def test_storage_bytes_small(self):
        # currKey + nextKey + Ptr: the paper budgets < 16 B per circuit.
        assert XorRemapEngine(nbits=21, seed=1).storage_bytes <= 16

    def test_layout_dump_guard(self):
        with pytest.raises(ValueError):
            XorRemapEngine(nbits=22, seed=1).physical_layout()

    def test_repr(self):
        assert "ptr" in repr(XorRemapEngine(nbits=4, seed=1))

    def test_multiple_epochs_stay_bijective(self):
        engine = XorRemapEngine(nbits=4, seed=10)
        for _ in range(5 * engine.space + 3):
            engine.remap_step()
        _assert_bijection(engine)
        assert engine.epochs_completed == 5
