"""Unit tests for activation trackers."""

import pytest

from repro.mitigations.trackers import MisraGriesTracker, PerRowTracker


class TestPerRowTracker:
    def test_triggers_at_threshold(self):
        tracker = PerRowTracker(threshold=3)
        assert not tracker.observe(7)
        assert not tracker.observe(7)
        assert tracker.observe(7)

    def test_counter_resets_after_trigger(self):
        tracker = PerRowTracker(threshold=2)
        tracker.observe(1)
        assert tracker.observe(1)
        assert not tracker.observe(1)  # starts over
        assert tracker.observe(1)

    def test_rows_independent(self):
        tracker = PerRowTracker(threshold=2)
        tracker.observe(1)
        assert not tracker.observe(2)

    def test_reset_clears(self):
        tracker = PerRowTracker(threshold=2)
        tracker.observe(1)
        tracker.reset()
        assert tracker.count_of(1) == 0
        assert not tracker.observe(1)

    def test_threshold_one(self):
        tracker = PerRowTracker(threshold=1)
        assert tracker.observe(5)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PerRowTracker(threshold=0)


class TestMisraGries:
    def test_exact_when_table_large(self):
        exact = PerRowTracker(threshold=5)
        mg = MisraGriesTracker(threshold=5, num_counters=100)
        stream = [1, 2, 3, 1, 1, 2, 1, 1, 3, 2, 2, 2]
        for row in stream:
            assert mg.observe(row) == exact.observe(row)

    def test_heavy_hitter_always_caught(self):
        # The Misra-Gries guarantee: a row with > stream/(k+1) more
        # activations than the threshold cannot escape.
        mg = MisraGriesTracker(threshold=10, num_counters=4)
        triggered = 0
        for i in range(200):
            # Heavy hitter every other access; noise rows otherwise.
            if i % 2 == 0:
                triggered += mg.observe(999)
            else:
                mg.observe(i)
        assert triggered >= 3  # 100 activations, lower-bound counts

    def test_decrement_frees_slots(self):
        mg = MisraGriesTracker(threshold=10, num_counters=2)
        mg.observe(1)
        mg.observe(2)
        mg.observe(3)  # full table: decrement-all, both entries drop to 0
        assert mg.occupancy == 0
        assert mg.decrements == 1

    def test_trigger_removes_entry(self):
        mg = MisraGriesTracker(threshold=2, num_counters=4)
        mg.observe(1)
        assert mg.observe(1)
        assert mg.occupancy == 0

    def test_threshold_one(self):
        mg = MisraGriesTracker(threshold=1, num_counters=4)
        assert mg.observe(42)
        assert mg.occupancy == 0

    def test_reset(self):
        mg = MisraGriesTracker(threshold=5, num_counters=4)
        mg.observe(1)
        mg.reset()
        assert mg.occupancy == 0

    def test_counter_budget_validated(self):
        with pytest.raises(ValueError):
            MisraGriesTracker(threshold=5, num_counters=0)

    def test_lower_bound_property(self):
        # Misra-Gries counts are lower bounds on true counts: it may
        # trigger later than an exact tracker but never earlier.
        exact = PerRowTracker(threshold=4)
        mg = MisraGriesTracker(threshold=4, num_counters=2)
        exact_first = None
        mg_first = None
        stream = [1, 2, 3, 4, 1, 5, 1, 6, 1, 7, 1, 8, 1, 9, 1]
        for index, row in enumerate(stream):
            if exact.observe(row) and exact_first is None:
                exact_first = index
            if mg.observe(row) and mg_first is None:
                mg_first = index
        assert exact_first is not None
        assert mg_first is None or mg_first >= exact_first
