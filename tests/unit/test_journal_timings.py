"""Checkpoint-journal timing metadata and old-format compatibility."""

import json

from repro.resilience.journal import CheckpointJournal


def write_old_format(path, cells):
    """A journal exactly as written before duration_s/worker_id existed."""
    lines = [
        json.dumps({"key": key, "record": record}) for key, record in cells
    ]
    path.write_text("\n".join(lines) + "\n")


class TestOldJournalCompatibility:
    def test_old_format_loads_and_resumes(self, tmp_path):
        path = tmp_path / "old.jsonl"
        write_old_format(path, [("a", {"status": "ok"}), ("b", {"status": "ok"})])
        journal = CheckpointJournal(path)
        assert journal.completed_keys() == {"a", "b"}
        assert journal.completed()["a"] == {"status": "ok"}
        assert journal.skipped_lines == 0

    def test_old_entries_skipped_by_timings(self, tmp_path):
        path = tmp_path / "old.jsonl"
        write_old_format(path, [("a", {"status": "ok"})])
        assert CheckpointJournal(path).timings() == {}

    def test_appending_to_old_journal_keeps_old_entries_intact(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        write_old_format(path, [("a", {"status": "ok"})])
        journal = CheckpointJournal(path)
        journal.append("b", {"status": "ok"}, duration_s=1.25, worker_id="p42")
        reread = CheckpointJournal(path)
        assert reread.completed_keys() == {"a", "b"}
        # The old entry gained nothing; only the new one has timings.
        assert reread.timings() == {"b": {"duration_s": 1.25, "worker_id": "p42"}}


class TestTimingFields:
    def test_append_without_timing_fields_writes_legacy_shape(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("a", {"status": "ok"})
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry == {"key": "a", "record": {"status": "ok"}}

    def test_timing_fields_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("a", {"status": "ok"}, duration_s=0.5, worker_id="p7")
        journal.append("b", {"status": "ok"}, duration_s=0.25)
        timings = CheckpointJournal(path).timings()
        assert timings["a"] == {"duration_s": 0.5, "worker_id": "p7"}
        assert timings["b"] == {"duration_s": 0.25, "worker_id": None}

    def test_duration_rounded_to_microseconds(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.append("a", {}, duration_s=0.123456789)
        assert journal.timings()["a"]["duration_s"] == 0.123457

    def test_record_payload_unaffected_by_timing_fields(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        record = {"status": "ok", "activations": 5}
        journal.append("a", record, duration_s=1.0, worker_id="p1")
        assert CheckpointJournal(path).completed()["a"] == record
