"""Unit tests for Rubix-S."""

import numpy as np
import pytest

from repro.core.rubix_s import RubixSMapping
from repro.dram.config import baseline_config


@pytest.fixture(scope="module")
def config():
    return baseline_config()


class TestAddressEncryption:
    def test_encrypt_decrypt_roundtrip(self, config):
        mapping = RubixSMapping(config, gang_size=4)
        for line in (0, 5, 123_456, config.total_lines - 1):
            assert mapping.decrypt_line(mapping.encrypt_line(line)) == line

    def test_translate_inverse_roundtrip(self, config):
        mapping = RubixSMapping(config, gang_size=2)
        for line in (0, 77, 99_999):
            assert mapping.inverse(mapping.translate(line)) == line

    def test_cipher_width_shrinks_with_gang(self, config):
        assert RubixSMapping(config, gang_size=1).cipher.width == 28
        assert RubixSMapping(config, gang_size=4).cipher.width == 26

    def test_seed_changes_mapping(self, config):
        a = RubixSMapping(config, gang_size=4, seed=1)
        b = RubixSMapping(config, gang_size=4, seed=2)
        lines = np.arange(1024, dtype=np.uint64)
        assert not np.array_equal(
            a.translate_trace(lines).global_row, b.translate_trace(lines).global_row
        )

    def test_deterministic_for_seed(self, config):
        a = RubixSMapping(config, gang_size=4, seed=9)
        b = RubixSMapping(config, gang_size=4, seed=9)
        assert a.translate(12345) == b.translate(12345)


class TestGangBehaviour:
    @pytest.mark.parametrize("gang_size", [1, 2, 4])
    def test_gang_co_resides_in_row(self, config, gang_size):
        mapping = RubixSMapping(config, gang_size=gang_size)
        rows = {
            config.global_row(mapping.translate(line)) for line in range(gang_size)
        }
        assert len(rows) == 1

    def test_adjacent_gangs_scatter(self, config):
        mapping = RubixSMapping(config, gang_size=4)
        rows = {
            config.global_row(mapping.translate(gang * 4)) for gang in range(64)
        }
        # 64 consecutive gangs should land in ~64 distinct rows.
        assert len(rows) >= 60

    def test_consecutive_lines_not_co_resident_at_gs1(self, config):
        mapping = RubixSMapping(config, gang_size=1)
        rows = [config.global_row(mapping.translate(line)) for line in range(16)]
        assert len(set(rows)) == 16


class TestScatterQuality:
    def test_footprint_spreads_over_rows(self, config, rng):
        # The Section-4.1 effect: a 64K-line footprint spreads over the
        # 2M rows instead of concentrating in 512 rows.
        mapping = RubixSMapping(config, gang_size=4)
        lines = np.arange(65536, dtype=np.uint64)
        mapped = mapping.translate_trace(lines)
        unique_rows = len(np.unique(mapped.global_row))
        assert unique_rows > 15_000  # 16384 gangs, minus collisions

    def test_banks_used_uniformly(self, config):
        mapping = RubixSMapping(config, gang_size=4)
        lines = np.arange(1 << 14, dtype=np.uint64)
        mapped = mapping.translate_trace(lines)
        counts = np.bincount(mapped.flat_bank.astype(np.int64), minlength=16)
        assert counts.min() > 0.7 * counts.mean()


class TestMetadata:
    def test_storage_matches_paper(self, config):
        # "requiring just 16 bytes of storage"
        assert RubixSMapping(config, gang_size=4).storage_bytes <= 20

    def test_name_includes_gang(self, config):
        assert "GS4" in RubixSMapping(config, gang_size=4).name
