"""Unit tests for the deterministic fault-injection harness.

The contract under test: every injected fault is either *detected* (a
typed error) or *flagged* (a degraded record) -- never a silent wrong
result.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import FaultInjectedError, MappingConfigError, TraceFormatError, TransientError
from repro.perf.simulator import RunResult
from repro.resilience.faults import (
    FaultPlan,
    FaultySimulator,
    SimulatedCrash,
    check_result_invariants,
    corrupt_remap_keys,
    corrupt_trace_file,
    snapshot_key_state,
    verify_key_state,
)
from repro.workloads.trace import Trace
from repro.workloads.trace_io import load_trace, save_trace


@pytest.fixture()
def bundle(tmp_path):
    trace = Trace(
        name="demo",
        lines=np.arange(5000, dtype=np.uint64) * 7,
        instructions=100_000,
        scale=0.5,
    )
    return save_trace(trace, tmp_path / "demo")


class TestTraceCorruption:
    def test_truncation_detected(self, bundle):
        corrupted = corrupt_trace_file(bundle, mode="truncate")
        with pytest.raises(TraceFormatError):
            load_trace(corrupted)

    @pytest.mark.parametrize("seed", range(8))
    def test_bitflip_detected(self, bundle, tmp_path, seed):
        corrupted = corrupt_trace_file(
            bundle, mode="bitflip", seed=seed, out=tmp_path / f"flip{seed}.npz"
        )
        with pytest.raises(TraceFormatError):
            load_trace(corrupted)

    def test_corruption_is_deterministic(self, bundle, tmp_path):
        a = corrupt_trace_file(bundle, mode="bitflip", seed=3, out=tmp_path / "a.npz")
        b = corrupt_trace_file(bundle, mode="bitflip", seed=3, out=tmp_path / "b.npz")
        assert a.read_bytes() == b.read_bytes()

    def test_original_untouched(self, bundle):
        before = bundle.read_bytes()
        corrupt_trace_file(bundle, mode="truncate")
        assert bundle.read_bytes() == before

    def test_unknown_mode_rejected(self, bundle):
        with pytest.raises(ValueError):
            corrupt_trace_file(bundle, mode="scramble")


class TestKeyCorruption:
    def test_corrupted_keys_fail_verification(self, small_config):
        from repro.core.rubix_d import RubixDMapping

        mapping = RubixDMapping(small_config, gang_size=4, seed=9)
        snapshot = snapshot_key_state(mapping)
        verify_key_state(mapping, snapshot)  # pristine state passes
        where = corrupt_remap_keys(mapping, seed=5)
        assert "curr_key" in where
        with pytest.raises(FaultInjectedError):
            verify_key_state(mapping, snapshot)

    def test_corruption_changes_translation(self, small_config):
        from repro.core.rubix_d import RubixDMapping

        lines = np.arange(1 << 12, dtype=np.uint64)
        pristine = RubixDMapping(small_config, gang_size=4, seed=9)
        rows_before = pristine.translate_trace(lines).global_row.copy()
        corrupt_remap_keys(pristine, seed=5)
        assert not np.array_equal(pristine.translate_trace(lines).global_row, rows_before)

    def test_static_cipher_mappings_snapshot_but_cannot_corrupt(self, small_config):
        from repro.core.rubix_s import RubixSMapping

        mapping = RubixSMapping(small_config, gang_size=4)
        assert snapshot_key_state(mapping)  # cipher key is checksummable
        with pytest.raises(MappingConfigError):
            corrupt_remap_keys(mapping)  # no mutable remap engines

    def test_keyless_mappings_rejected(self, small_config):
        from repro.mapping.intel import CoffeeLakeMapping

        with pytest.raises(MappingConfigError):
            snapshot_key_state(CoffeeLakeMapping(small_config))


def _result(**overrides) -> RunResult:
    base = RunResult(
        trace_name="demo",
        mapping_name="CoffeeLake",
        scheme="blockhammer",
        t_rh=128,
        accesses=10_000,
        activations=4_000,
        hit_rate=0.6,
        unique_rows=900,
        hot_rows_64=10,
        hot_rows_512=2,
        max_row_activations=700,
        mitigations=25,
        remap_swaps=0,
        exec_time_s=0.05,
        window_s=0.064,
        normalized_performance=0.97,
    )
    return dataclasses.replace(base, **overrides)


class TestResultInvariants:
    def test_healthy_result_passes(self):
        assert check_result_invariants(_result()) == []

    @pytest.mark.parametrize(
        "overrides",
        [
            {"activations": -1},
            {"activations": 20_000},  # more ACTs than accesses
            {"hit_rate": 1.5},
            {"mitigations": -3},
            {"exec_time_s": 0.0},
            {"normalized_performance": float("nan")},
            {"hot_rows_512": 99, "hot_rows_64": 1},
        ],
    )
    def test_impossible_results_raise(self, overrides):
        with pytest.raises(FaultInjectedError):
            check_result_invariants(_result(**overrides))

    def test_dropped_mitigations_flagged_not_silent(self):
        # A row crossed T_RH yet the scheme never fired: suspicious.
        flags = check_result_invariants(_result(mitigations=0, max_row_activations=500))
        assert flags == ["suspect-mitigation-count"]

    def test_zero_mitigations_legitimate_when_below_threshold(self):
        flags = check_result_invariants(_result(mitigations=0, max_row_activations=90))
        assert flags == []


class _StubSimulator:
    """Minimal Simulator stand-in for plan-matching tests."""

    config = None

    def __init__(self):
        self.runs = 0

    def run(self, trace, mapping, *, scheme="none", t_rh=128):
        self.runs += 1
        return _result(trace_name=trace.name, scheme=scheme, t_rh=t_rh)


class _StubMapping:
    name = "CoffeeLake"


def _trace(name="demo"):
    return Trace(name=name, lines=np.arange(16, dtype=np.uint64), instructions=1000)


class TestFaultySimulator:
    def test_unmatched_cells_pass_through(self):
        sim = FaultySimulator(_StubSimulator(), FaultPlan(fail_cells=("other|",)))
        result = sim.run(_trace(), _StubMapping(), scheme="aqua", t_rh=128)
        assert result.mitigations == 25 and sim.cells_completed == 1

    def test_hard_fault_raises_typed_error(self):
        sim = FaultySimulator(_StubSimulator(), FaultPlan(fail_cells=("demo|CoffeeLake",)))
        with pytest.raises(FaultInjectedError):
            sim.run(_trace(), _StubMapping())
        assert sim.cells_completed == 0

    def test_transient_fault_fails_n_times_then_succeeds(self):
        sim = FaultySimulator(_StubSimulator(), FaultPlan(transient_cells={"demo": 2}))
        for _ in range(2):
            with pytest.raises(TransientError):
                sim.run(_trace(), _StubMapping())
        assert sim.run(_trace(), _StubMapping()).mitigations == 25

    def test_dropped_mitigations_are_flagged_by_invariants(self):
        sim = FaultySimulator(_StubSimulator(), FaultPlan(drop_mitigation_cells=("demo",)))
        result = sim.run(_trace(), _StubMapping(), scheme="blockhammer")
        assert result.mitigations == 0  # silently corrupted...
        assert check_result_invariants(result) == ["suspect-mitigation-count"]  # ...but caught

    def test_crash_after_n_cells(self):
        sim = FaultySimulator(_StubSimulator(), FaultPlan(crash_after_cells=2))
        sim.run(_trace("a"), _StubMapping())
        sim.run(_trace("b"), _StubMapping())
        with pytest.raises(SimulatedCrash):
            sim.run(_trace("c"), _StubMapping())

    def test_crash_is_not_an_ordinary_exception(self):
        # The executor absorbs Exception; a crash must tear through it.
        assert not issubclass(SimulatedCrash, Exception)
