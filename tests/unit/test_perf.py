"""Unit tests for the performance model, metrics, and simulator."""

import numpy as np
import pytest

from repro.dram.config import baseline_config
from repro.dram.fast_model import TraceStats
from repro.mapping.intel import CoffeeLakeMapping
from repro.core.rubix_s import RubixSMapping
from repro.perf.core_model import Calibration, PerformanceModel
from repro.perf.metrics import (
    arithmetic_mean,
    geometric_mean,
    percent,
    slowdown_percent,
)
from repro.perf.simulator import Simulator
from repro.workloads.kernels import random_kernel


def _stats(activations, hits, acts_per_row=None):
    acts_per_row = acts_per_row if acts_per_row is not None else [activations]
    row_ids = np.arange(len(acts_per_row), dtype=np.int64)
    return TraceStats(
        n_accesses=activations + hits,
        n_activations=activations,
        n_hits=hits,
        row_ids=row_ids,
        acts_per_row=np.asarray(acts_per_row, dtype=np.int64),
        unique_rows_touched=len(acts_per_row),
    )


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_validates(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_slowdown_percent(self):
        assert slowdown_percent(1.0) == pytest.approx(0.0)
        assert slowdown_percent(0.5) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            slowdown_percent(0.0)

    def test_percent(self):
        assert percent(0.25) == 25.0


class TestPerformanceModel:
    @pytest.fixture()
    def model(self):
        return PerformanceModel(baseline_config())

    def test_memory_time_monotone_in_activations(self, model):
        low = model.memory_time_s(_stats(activations=1000, hits=9000))
        high = model.memory_time_s(_stats(activations=9000, hits=1000))
        assert high > low

    def test_core_time_floor(self, model):
        # A memory-saturated window keeps a nonzero core share.
        heavy = _stats(activations=50_000_000, hits=0)
        assert model.core_time_s(heavy, 0.064) == pytest.approx(
            0.064 * model.calibration.min_core_fraction
        )

    def test_mitigation_loads(self, model):
        stats = _stats(activations=200, hits=0, acts_per_row=[130, 70])
        aqua = model.mitigation_load("aqua", stats, t_rh=128)
        # Threshold 64: floor(130/64) + floor(70/64) = 2 + 1.
        assert aqua.invocations == 3
        srs = model.mitigation_load("srs", stats, t_rh=128)
        # Threshold 42: 3 + 1.
        assert srs.invocations == 4
        bh = model.mitigation_load("blockhammer", stats, t_rh=128)
        # Excess over 64: 66 + 6.
        assert bh.throttled_activations == 72

    def test_none_scheme_free(self, model):
        stats = _stats(activations=100, hits=0, acts_per_row=[100])
        load = model.mitigation_load("none", stats, t_rh=128)
        assert load.serial_time_s == 0.0

    def test_unknown_scheme(self, model):
        with pytest.raises(ValueError):
            model.mitigation_load("tr", _stats(1, 1), 128)

    def test_srs_costlier_than_aqua_per_event(self, model):
        stats = _stats(activations=100, hits=0, acts_per_row=[64])
        aqua = model.mitigation_load("aqua", stats, 128)
        srs_stats = _stats(activations=100, hits=0, acts_per_row=[42])
        srs = model.mitigation_load("srs", srs_stats, 128)
        assert srs.serial_time_s > aqua.serial_time_s

    def test_remap_time_mostly_hidden(self, model):
        visible = model.remap_time_s(1000, gang_size=4)
        raw = 1000 * model.costs.rubix_d_swap_s(4)
        assert visible < 0.2 * raw
        with pytest.raises(ValueError):
            model.remap_time_s(-1, gang_size=4)

    def test_execution_time_composition(self, model):
        stats = _stats(activations=1000, hits=1000, acts_per_row=[100] * 10)
        base = model.execution_time_s(stats, core_time_s=0.01)
        with_mitigation = model.execution_time_s(
            stats, core_time_s=0.01, scheme="aqua", t_rh=128
        )
        assert with_mitigation > base


class TestSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulator(baseline_config())

    @pytest.fixture(scope="class")
    def trace(self):
        return random_kernel(footprint_lines=1 << 16, accesses=100_000, seed=8)

    def test_baseline_normalizes_to_one(self, sim, trace):
        mapping = CoffeeLakeMapping(sim.config)
        result = sim.run(trace, mapping, scheme="none")
        assert result.normalized_performance == pytest.approx(1.0)

    def test_mitigation_never_speeds_up(self, sim, trace):
        mapping = CoffeeLakeMapping(sim.config)
        base = sim.run(trace, mapping, scheme="none")
        protected = sim.run(trace, mapping, scheme="srs", t_rh=128)
        assert protected.normalized_performance <= base.normalized_performance + 1e-9

    def test_stats_cached(self, sim, trace):
        mapping = CoffeeLakeMapping(sim.config)
        a, _ = sim.window_stats(trace, mapping)
        b, _ = sim.window_stats(trace, mapping)
        assert a is b

    def test_trace_key_distinguishes_same_shaped_traces(self, sim):
        # Regression: the cache key was (name, scale, size), so two
        # same-shaped traces from different generator seeds silently
        # shared one cached analysis.  The key now includes a content
        # fingerprint -- these two must analyze independently.
        t1 = random_kernel(footprint_lines=1 << 12, accesses=20_000, seed=101)
        t2 = random_kernel(footprint_lines=1 << 12, accesses=20_000, seed=202)
        assert t1.name == t2.name and t1.scale == t2.scale
        assert t1.lines.size == t2.lines.size
        assert t1.fingerprint != t2.fingerprint
        mapping = CoffeeLakeMapping(sim.config)
        a, _ = sim.window_stats(t1, mapping)
        b, _ = sim.window_stats(t2, mapping)
        assert a is not b
        assert a.acts_per_row.tolist() != b.acts_per_row.tolist()

    def test_trace_key_includes_seed(self, sim):
        t1 = random_kernel(footprint_lines=1 << 10, accesses=1_000, seed=7)
        assert sim._trace_key(t1)[-2:] == (t1.fingerprint, t1.seed)

    def test_power_read_write_conservation(self, sim, trace, monkeypatch):
        # Regression: reads and writes were each int()-truncated from
        # n_accesses, so a fractional write_fraction dropped an access
        # (e.g. 100000/3 + 100000*2/3 floors to 99999).  Writes are now
        # the remainder; conservation must hold exactly, swaps included.
        captured = {}
        real_compute = sim.power_model.compute

        def spy(**kwargs):
            captured.update(kwargs)
            return real_compute(**kwargs)

        monkeypatch.setattr(sim.power_model, "compute", spy)
        for mapping in (
            CoffeeLakeMapping(sim.config),
            RubixSMapping(sim.config, gang_size=4),
        ):
            stats, swaps = sim.window_stats(trace, mapping)
            sim.power(trace, mapping, write_fraction=1 / 3)
            gang_size = getattr(mapping, "gang_size", 1)
            assert (
                captured["reads"] + captured["writes"]
                == stats.n_accesses + 4 * gang_size * swaps
            )

    def test_unknown_scheme_rejected(self, sim, trace):
        with pytest.raises(ValueError):
            sim.run(trace, CoffeeLakeMapping(sim.config), scheme="nope")

    def test_run_result_fields(self, sim, trace):
        result = sim.run(trace, RubixSMapping(sim.config, gang_size=4), scheme="aqua")
        assert result.accesses == len(trace)
        assert result.activations > 0
        assert 0 <= result.hit_rate <= 1
        assert result.mapping_name == "Rubix-S (GS4)"
        assert result.slowdown_pct >= -5  # small speedups possible vs CL

    def test_power_reasonable(self, sim, trace):
        power = sim.power(trace, CoffeeLakeMapping(sim.config))
        assert 1.0 < power.total_w < 6.0
