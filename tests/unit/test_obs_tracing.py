"""Unit tests for spans, structured logs, manifests, and the schema."""

import json

import pytest

from repro.obs.logs import NORMAL, QUIET, VERBOSE, LogState, StructuredLogger
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    REQUIRED_CAMPAIGN_METRICS,
    validate_manifest,
    validate_snapshot,
)
from repro.obs.tracing import Tracer, _NULL_SPAN


@pytest.fixture
def tracer():
    registry = MetricsRegistry(enabled=True)
    events = []
    return Tracer(registry, emit=events.append), registry, events


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(MetricsRegistry(enabled=False))
        span = tracer.span("campaign.cell", workload="gcc")
        assert span is _NULL_SPAN
        with span:
            pass
        assert not tracer.finished

    def test_nested_paths(self, tracer):
        tracer, registry, events = tracer
        with tracer.span("campaign.run"):
            with tracer.span("campaign.cell", workload="gcc"):
                with tracer.span("sim.translate"):
                    pass
        paths = [record.path for record in tracer.finished]
        assert paths == [
            "campaign.run/campaign.cell/sim.translate",
            "campaign.run/campaign.cell",
            "campaign.run",
        ]
        assert tracer.current_path() == ""

    def test_span_aggregates_into_registry(self, tracer):
        tracer, registry, events = tracer
        with tracer.span("sim.window"):
            pass
        assert registry.counter_value("span.count", span="sim.window", status="ok") == 1
        hist = registry.histogram("span.seconds", span="sim.window")
        assert hist is not None and hist.count == 1

    def test_exception_marks_error_and_propagates(self, tracer):
        tracer, registry, events = tracer
        with pytest.raises(RuntimeError):
            with tracer.span("campaign.cell"):
                raise RuntimeError("boom")
        record = tracer.finished[-1]
        assert record.status == "error"
        assert (
            registry.counter_value("span.count", span="campaign.cell", status="error")
            == 1
        )
        # The stack unwound despite the exception.
        assert tracer.current_path() == ""

    def test_add_records_synthetic_span_under_current_path(self, tracer):
        tracer, registry, events = tracer
        with tracer.span("sim.window"):
            tracer.add("sim.translate", 0.125, mapping="rubix-d")
        synthetic = tracer.finished[0]
        assert synthetic.name == "sim.translate"
        assert synthetic.path == "sim.window/sim.translate"
        assert synthetic.duration_s == 0.125
        hist = registry.histogram("span.seconds", span="sim.translate")
        assert hist.sum == pytest.approx(0.125)

    def test_events_emitted_with_schema_fields(self, tracer):
        tracer, registry, events = tracer
        with tracer.span("trace.gen", workload="gcc"):
            pass
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "span"
        for key in ("name", "path", "duration_s", "status", "ts", "pid"):
            assert key in event
        assert event["attrs"] == {"workload": "gcc"}


class TestStructuredLogger:
    def _logger(self, tmp_path=None, verbosity=NORMAL):
        state = LogState()
        state.verbosity = verbosity
        if tmp_path is not None:
            state.set_json_path(tmp_path / "log.jsonl")
        return StructuredLogger("test", state), state

    def test_message_printed_verbatim_to_stdout(self, capsys):
        log, _ = self._logger()
        log.info("experiment.finished", message="[fig7 finished in 1.0s]")
        captured = capsys.readouterr()
        assert captured.out == "[fig7 finished in 1.0s]\n"
        assert captured.err == ""

    def test_errors_go_to_stderr(self, capsys):
        log, _ = self._logger()
        log.error("experiment.failed", message="[fig7 failed]")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "[fig7 failed]\n"

    def test_quiet_suppresses_info_but_not_errors(self, capsys):
        log, _ = self._logger(verbosity=QUIET)
        log.info("status", message="hidden")
        log.error("bad", message="shown")
        captured = capsys.readouterr()
        assert "hidden" not in captured.out
        assert "shown" in captured.err

    def test_verbose_shows_debug(self, capsys):
        log, _ = self._logger(verbosity=VERBOSE)
        log.debug("detail", message="debug line")
        assert "debug line" in capsys.readouterr().out

    def test_normal_hides_debug(self, capsys):
        log, _ = self._logger()
        log.debug("detail", message="debug line")
        assert capsys.readouterr().out == ""

    def test_event_rendering_without_message(self, capsys):
        log, _ = self._logger()
        log.info("cache.cleared", entries=5)
        assert capsys.readouterr().out == "cache.cleared entries=5\n"

    def test_json_sink_gets_all_records_even_when_quiet(self, tmp_path, capsys):
        log, state = self._logger(tmp_path, verbosity=QUIET)
        log.info("status", message="hidden", experiment="fig7")
        log.debug("detail", step=3)
        state.close()
        capsys.readouterr()
        lines = [
            json.loads(line)
            for line in (tmp_path / "log.jsonl").read_text().splitlines()
        ]
        assert [record["event"] for record in lines] == ["status", "detail"]
        assert lines[0]["experiment"] == "fig7"
        assert lines[0]["level"] == "info"
        for record in lines:
            assert {"ts", "level", "logger", "event"} <= set(record)


class TestRunManifest:
    def test_create_finalize_round_trip(self, tmp_path):
        manifest = RunManifest.create(
            "unit-test",
            argv=["prog", "run"],
            config={"scale": 0.1},
            seeds={"mapping": 2024},
        )
        manifest.finalize(metrics={"counters": {}, "gauges": {}, "histograms": {}})
        path = manifest.write(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.command == "unit-test"
        assert loaded.run_id == manifest.run_id
        assert loaded.config == {"scale": 0.1}
        assert loaded.seeds == {"mapping": 2024}
        assert loaded.schema_version == MANIFEST_SCHEMA_VERSION
        assert loaded.duration_s is not None and loaded.duration_s >= 0
        assert loaded.packages.get("python")
        assert loaded.packages.get("numpy")

    def test_validate_finalized_manifest(self):
        manifest = RunManifest.create("unit-test")
        manifest.finalize(metrics={"counters": {}, "gauges": {}, "histograms": {}})
        assert validate_manifest(manifest.to_dict()) == []

    def test_validate_flags_unfinalized(self):
        manifest = RunManifest.create("unit-test")
        errors = validate_manifest(manifest.to_dict())
        assert any("finalized" in error for error in errors)

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError):
            RunManifest.load(path)


class TestSchemaValidation:
    def test_clean_snapshot_validates(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("campaign.cells", status="ok")
        reg.observe("span.seconds", 0.1, span="campaign.cell")
        assert validate_snapshot(reg.snapshot()) == []

    def test_unknown_metric_name_flagged(self):
        snap = {"counters": {"made.up": 1}, "gauges": {}, "histograms": {}}
        errors = validate_snapshot(snap)
        assert any("unknown metric name 'made.up'" in error for error in errors)

    def test_undeclared_label_key_flagged(self):
        snap = {
            "counters": {"campaign.cells|color=red": 1},
            "gauges": {},
            "histograms": {},
        }
        errors = validate_snapshot(snap)
        assert any("undeclared label key 'color'" in error for error in errors)

    def test_kind_mismatch_flagged(self):
        snap = {"counters": {"cache.entries": 1}, "gauges": {}, "histograms": {}}
        errors = validate_snapshot(snap)
        assert any("declared gauge" in error for error in errors)

    def test_missing_required_metric_flagged(self):
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
        errors = validate_snapshot(snap, required=REQUIRED_CAMPAIGN_METRICS)
        assert any("'campaign.cells' was never emitted" in error for error in errors)

    def test_overflow_label_always_legal(self):
        snap = {
            "counters": {"campaign.cells|overflow=true": 1},
            "gauges": {},
            "histograms": {},
        }
        assert validate_snapshot(snap) == []


class TestTraceContext:
    """Distributed (trace_id, span_id, parent_span_id) propagation."""

    def test_root_span_mints_trace_and_has_no_parent(self, tracer):
        trc, _, _ = tracer
        with trc.span("campaign.run"):
            pass
        record = trc.finished[-1]
        assert record.trace_id and record.span_id
        assert record.parent_span_id == ""

    def test_nested_span_inherits_trace_and_parent(self, tracer):
        trc, _, _ = tracer
        with trc.span("campaign.run"):
            with trc.span("campaign.cell"):
                pass
        child, parent = trc.finished[-2], trc.finished[-1]
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_sequential_roots_get_distinct_traces(self, tracer):
        trc, _, _ = tracer
        with trc.span("campaign.run"):
            pass
        with trc.span("campaign.run"):
            pass
        first, second = trc.finished[0], trc.finished[1]
        assert first.trace_id != second.trace_id

    def test_current_context_round_trips_through_attach(self, tracer):
        trc, _, _ = tracer
        with trc.span("service.submit"):
            token = trc.current_context()
        assert token is not None
        trace_id, _, span_id = token.partition(":")
        with trc.attach(token):
            with trc.span("campaign.cell"):
                pass
        remote = trc.finished[-1]
        assert remote.trace_id == trace_id
        assert remote.parent_span_id == span_id

    def test_attach_contributes_nothing_to_paths(self, tracer):
        trc, _, _ = tracer
        with trc.span("service.submit"):
            token = trc.current_context()
        with trc.attach(token):
            with trc.span("campaign.cell"):
                assert trc.current_path() == "campaign.cell"

    def test_attach_rejects_malformed_tokens(self, tracer):
        trc, _, _ = tracer
        for bad in (None, "", "no-separator", ":", "a:", ":b"):
            assert trc.attach(bad) is _NULL_SPAN

    def test_current_context_none_outside_spans(self, tracer):
        trc, _, _ = tracer
        assert trc.current_context() is None

    def test_disabled_tracer_has_no_context(self):
        trc = Tracer(MetricsRegistry(enabled=False))
        assert trc.current_context() is None
        assert trc.attach("a:b") is _NULL_SPAN

    def test_add_inherits_enclosing_context(self, tracer):
        trc, _, _ = tracer
        with trc.span("sim.window"):
            trc.add("sim.translate", 0.005)
            enclosing_token = trc.current_context()
        synthetic = trc.finished[0]
        trace_id, _, span_id = enclosing_token.partition(":")
        assert synthetic.trace_id == trace_id
        assert synthetic.parent_span_id == span_id

    def test_span_events_carry_context_and_monotonic_ts(self, tracer):
        trc, _, events = tracer
        with trc.span("campaign.run"):
            pass
        event = events[-1]
        assert event["trace_id"] and event["span_id"]
        assert event["parent_span_id"] == ""
        assert event["ts_mono"] > 0
        assert event["ts"] > 0

    def test_exception_exit_still_pops_stack(self, tracer):
        trc, _, _ = tracer
        with pytest.raises(ValueError):
            with trc.span("campaign.run"):
                raise ValueError("boom")
        assert trc.current_context() is None
