"""Unit tests for experiment-harness plumbing (common, registry, runner)."""

import pytest

from repro.dram.config import baseline_config
from repro.experiments.common import (
    ExperimentResult,
    clear_caches,
    get_simulator,
    get_trace,
    make_mapping,
)
from repro.experiments.registry import ExperimentEntry, get_experiment, list_experiments


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            experiment_id="x",
            title="T",
            headers=["a", "b"],
            rows=[["r1", 1.2345], ["r2", 0]],
            notes=["n"],
        )

    def test_format_contains_everything(self, result):
        text = result.format()
        assert "== x: T ==" in text
        assert "r1" in text and "1.23" in text
        assert "note: n" in text

    def test_zero_formats_compactly(self, result):
        assert "\nr2" in result.format() or "r2" in result.format()
        assert "0      " in result.format() or " 0" in result.format()

    def test_column(self, result):
        assert result.column("a") == ["r1", "r2"]
        with pytest.raises(ValueError):
            result.column("missing")

    def test_row_map(self, result):
        assert result.row_map()["r1"][1] == 1.2345
        assert result.row_map("a")["r2"][0] == "r2"


class TestCaches:
    def test_simulator_shared_per_geometry(self):
        config = baseline_config()
        assert get_simulator(config) is get_simulator(config)

    def test_trace_cache_by_parameters(self):
        a = get_trace("xz", scale=0.02)
        b = get_trace("xz", scale=0.02)
        c = get_trace("xz", scale=0.03)
        assert a is b
        assert a is not c

    def test_trace_namespace_dispatch(self):
        assert get_trace("mix1", scale=0.02).name == "mix1"
        assert get_trace("stream-copy", scale=0.05).name == "stream-copy"
        assert get_trace("gcc", scale=0.02).name == "gcc"

    def test_clear_caches(self):
        a = get_trace("xz", scale=0.02)
        clear_caches()
        b = get_trace("xz", scale=0.02)
        assert a is not b


class TestMappingFactory:
    def test_all_names_construct(self):
        from repro.experiments.common import MAPPING_NAMES

        config = baseline_config()
        for name in MAPPING_NAMES:
            mapping = make_mapping(name, config)
            assert mapping.translate(0) is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_mapping("quantum", baseline_config())

    def test_gang_size_forwarded(self):
        mapping = make_mapping("rubix-s", baseline_config(), gang_size=2)
        assert mapping.gang_size == 2


class TestRegistry:
    def test_entries_well_formed(self):
        for entry in list_experiments():
            assert isinstance(entry, ExperimentEntry)
            assert 0 < entry.default_scale <= 1.0
            assert entry.title

    def test_lookup(self):
        assert get_experiment("fig7").experiment_id == "fig7"

    def test_experiment_count_covers_paper(self):
        # 22 paper artifacts + mixes + 6 ablations + sec73 + actdist.
        assert len(list_experiments()) >= 30
