#!/usr/bin/env python3
"""Mapping explorer: where do the lines of a page actually land?

Shows, for each mapping, how the 128 lines of two consecutive 4 KB pages
scatter across banks and rows -- the spatial correlation Rubix breaks --
then reruns the Figure-4 kernels (stream / stride-64 / random) under a
sequential and an encrypted mapping to show hot rows appear and vanish.

Run:  python examples/mapping_explorer.py
"""

from collections import Counter

from repro import (
    CoffeeLakeMapping,
    LinearMapping,
    MOPMapping,
    RubixDMapping,
    RubixSMapping,
    SkylakeMapping,
    baseline_config,
)
from repro.dram.config import DRAMConfig
from repro.dram.fast_model import analyze_trace
from repro.mapping.stride import LargeStrideMapping
from repro.utils.units import KB
from repro.workloads.kernels import random_kernel, stream_kernel, stride_kernel


def page_scatter() -> None:
    config = baseline_config()
    mappings = [
        CoffeeLakeMapping(config),
        SkylakeMapping(config),
        MOPMapping(config),
        LargeStrideMapping(config, gang_size=4),
        RubixSMapping(config, gang_size=4),
        RubixDMapping(config, gang_size=4),
    ]
    print("=== two consecutive 4 KB pages (128 lines) per mapping ===")
    print(f"{'mapping':<22s} {'rows used':>9s} {'banks used':>10s}  max lines/row")
    for mapping in mappings:
        rows = Counter()
        banks = set()
        for line in range(128):
            coord = mapping.translate(line)
            rows[config.global_row(coord)] += 1
            banks.add(config.flat_bank(coord))
        print(
            f"{mapping.name:<22s} {len(rows):>9d} {len(banks):>10d}  "
            f"{max(rows.values()):>5d}"
        )
    print(
        "\nCoffee Lake co-locates all 128 lines; Rubix scatters them into"
        "\n32 gangs of 4, each in an unrelated row."
    )


def figure4_kernels() -> None:
    # The Figure-4 system: 4 GB, one bank, 1M rows of 4 KB.
    config = DRAMConfig(channels=1, ranks=1, banks=1, rows_per_bank=1 << 20, row_bytes=4 * KB)
    baseline = LinearMapping(config)
    encrypted = RubixSMapping(config, gang_size=1)
    print("\n=== Figure 4: hot rows (ACT-64+) for a 4 MB footprint ===")
    print(f"{'kernel':<10s} {'sequential':>11s} {'encrypted':>10s}")
    for trace in (stream_kernel(), stride_kernel(), random_kernel()):
        row = [trace.name]
        for mapping in (baseline, encrypted):
            mapped = mapping.translate_trace(trace.lines)
            stats = analyze_trace(
                mapped.flat_bank,
                mapped.row,
                rows_per_bank=config.rows_per_bank,
                max_hits=None,
            )
            row.append(stats.hot_rows(64))
        print(f"{row[0]:<10s} {row[1]:>11d} {row[2]:>10d}")


if __name__ == "__main__":
    page_scatter()
    figure4_kernels()
