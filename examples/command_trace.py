#!/usr/bin/env python3
"""Command-level view: what the DRAM bus actually sees.

Replays a tiny access sequence through the command-level DDR4 protocol
engine under the Coffee Lake and Rubix-S mappings, printing every
ACT/PRE/RD command with its issue time — so you can watch the row-buffer
locality (and its loss under randomization) at the command level. Then
it replays an AQUA row migration and an SRS row swap to show why those
mitigative actions block the channel for microseconds.

Run:  python examples/command_trace.py
"""

from repro import CoffeeLakeMapping, RubixSMapping
from repro.dram.config import DRAMConfig
from repro.dram.protocol import ProtocolEngine
from repro.mitigations.costs import MitigationCostModel
from repro.mitigations.migration_traffic import (
    measure_row_migration,
    measure_row_swap,
    measure_rubix_d_swap,
)


def trace_accesses() -> None:
    config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=1024)
    lines = [0, 1, 2, 3, 130, 131, 0, 1]  # two runs + a revisit
    for mapping in (CoffeeLakeMapping(config), RubixSMapping(config, gang_size=4)):
        engine = ProtocolEngine(config, collect_commands=True)
        now = 0.0
        for line in lines:
            outcome = engine.access(mapping.translate(line), now)
            now = outcome.data_ready
        print(f"=== {mapping.name}: command trace for lines {lines} ===")
        for command in engine.commands:
            print(f"  {command}")
        print(
            f"  -> {engine.activations} ACTs, "
            f"{engine.counts[list(engine.counts)[1]]} PREs, "
            f"finished at {now * 1e9:.1f} ns\n"
        )


def mitigation_costs() -> None:
    config = DRAMConfig()  # the 16 GB paper baseline
    costs = MitigationCostModel(config, controller_overhead=1.0)
    print("=== mitigative data movement, measured at command level ===")
    for measurement, model in (
        (measure_row_migration(config), costs.migration_s),
        (measure_row_swap(config), costs.swap_s),
        (measure_rubix_d_swap(config, gang_size=4), costs.rubix_d_swap_s(4)),
    ):
        print(
            f"{measurement.operation:<16s} measured {measurement.duration_s * 1e6:7.2f} us"
            f"  (model {model * 1e6:6.2f} us)"
            f"  traffic {measurement.reads}R/{measurement.writes}W/"
            f"{measurement.activations}ACT"
        )
    print(
        "\nAQUA/SRS move whole 8 KB rows (microseconds of blocked channel);"
        "\na Rubix-D gang swap moves 256 bytes and hides in idle slots."
    )


if __name__ == "__main__":
    trace_accesses()
    mitigation_costs()
