#!/usr/bin/env python3
"""Rubix-D dynamics: watch the mapping change under an adversary's feet.

Demonstrates the Section 5.6 hardening: an attacker who has inferred
which line addresses currently live *adjacent* to a victim row (the
critical step for Half-Double/BLASTER-style multi-row attacks) loses
that knowledge as the per-v-group remap sweeps rotate the mapping.

We use a small 256 MB geometry so a full remap period fits in a demo
run, brute-force the victim's physical neighbourhood before and during
remapping, and report the decay plus the engine's own cost accounting.

Run:  python examples/rubix_d_dynamics.py
"""

import numpy as np

from repro import RubixDMapping
from repro.dram.config import DRAMConfig


def adjacency_set(mapping, config, all_lines, victim_line):
    """Line addresses currently mapped within one row of the victim's."""
    mapped = mapping.translate_trace(all_lines)
    rows = mapped.global_row.astype(np.int64)
    victim_row = config.global_row(mapping.translate(victim_line))
    near = np.abs(rows - victim_row) <= 1
    same_bank = (rows // config.rows_per_bank) == (victim_row // config.rows_per_bank)
    return victim_row, set(all_lines[near & same_bank].tolist())


def main() -> None:
    config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=8192)
    mapping = RubixDMapping(config, gang_size=4, remap_rate=0.01)
    all_lines = np.arange(config.total_lines, dtype=np.uint64)
    victim_line = 123_456

    victim_row, initial = adjacency_set(mapping, config, all_lines, victim_line)
    print(
        f"geometry: {config.capacity_bytes >> 20} MB, "
        f"{config.total_rows} rows; victim line {victim_line:#x} "
        f"in global row {victim_row}"
    )
    print(f"attacker's inferred neighbourhood: {len(initial)} line addresses")
    print(
        f"remap period: {mapping.remap_period_activations:,.0f} activations "
        f"per v-group sweep\n"
    )

    # Each step models a busy interval: ~3M activations spread evenly
    # over the 32 v-groups (1% of them trigger remap episodes).
    acts_per_step = np.full(mapping.vgroups, 100_000.0)
    print(f"{'step':>4s} {'episodes':>9s} {'victim row':>11s} {'adjacency kept':>15s}")
    for step in range(1, 13):
        swaps = mapping.record_activations(acts_per_step)
        victim_row, adjacent = adjacency_set(mapping, config, all_lines, victim_line)
        kept = len(initial & adjacent)
        print(f"{step:>4d} {swaps:>9d} {victim_row:>11d} {kept:>10d}/{len(initial)}")

    commands = mapping.swap_cost_commands()
    performed = sum(e.swaps_performed for e in mapping.engines)
    skipped = sum(e.swaps_skipped for e in mapping.engines)
    print(
        f"\nremap accounting: {performed:,} swaps ({skipped:,} skipped), each "
        f"costing {commands['activations']} ACTs + {commands['reads']} reads "
        f"+ {commands['writes']} writes"
    )
    print(f"controller SRAM for all remap circuits: {mapping.storage_bytes} bytes")
    print(
        "\nThe neighbourhood the attacker derived decays toward zero: a"
        "\ntargeted multi-row attack must re-learn the adjacency map faster"
        "\nthan Rubix-D rotates it, on top of defeating AQUA/SRS/Blockhammer."
    )


if __name__ == "__main__":
    main()
