#!/usr/bin/env python3
"""Security analysis: which defenses survive which Rowhammer attacks.

Replays single-sided, double-sided, and Half-Double attack patterns
through the detailed memory system against every mitigation, reproducing
the paper's security matrix (Table 5): victim refresh (TRR) falls to
Half-Double while the aggressor-focused schemes bound every row's
activations below T_RH -- under the baseline mapping *and* under Rubix.

Run:  python examples/attack_analysis.py
"""

from repro import AQUA, SRS, Blockhammer, CoffeeLakeMapping, RubixSMapping, TRR
from repro.analysis.security import verify_mitigation
from repro.dram.config import DRAMConfig
from repro.workloads.attacks import (
    double_sided_attack,
    half_double_attack,
    single_sided_attack,
)

T_RH = 128


def main() -> None:
    # A small 128 MB geometry keeps the cycle-level replay snappy; the
    # security guarantees are geometry-independent.
    config = DRAMConfig(channels=1, ranks=1, banks=4, rows_per_bank=8192)

    def defenses():
        return {
            "none": None,
            "TRR (victim refresh)": TRR(config, T_RH),
            "AQUA": AQUA(config, T_RH),
            "SRS": SRS(config, T_RH),
            "Blockhammer": Blockhammer(config, T_RH),
        }

    for mapping_name, mapping in (
        ("Coffee Lake", CoffeeLakeMapping(config)),
        ("Rubix-S GS4", RubixSMapping(config, gang_size=4)),
    ):
        attacks = [
            single_sided_attack(mapping, aggressor_row=100, activations=2000),
            double_sided_attack(mapping, victim_row=1000, activations_per_side=2000),
            half_double_attack(mapping, victim_row=1000, far_activations=20000),
        ]
        print(f"\n=== mapping: {mapping_name} (attacker knows the mapping) ===")
        print(f"{'attack':<22s} {'defense':<22s} {'max acts':>9s} {'disturb':>8s} verdict")
        for attack in attacks:
            for name, mitigation in defenses().items():
                report = verify_mitigation(
                    config, mapping, mitigation, attack, t_rh=T_RH
                )
                verdict = "SECURE" if report.secure else "BIT FLIPS"
                print(
                    f"{attack.name:<22s} {name:<22s} "
                    f"{report.max_row_activations:>9d} "
                    f"{report.max_refresh_disturbance:>8d} {verdict}"
                )
    print(
        "\nNote how TRR survives the classic patterns but Half-Double turns"
        "\nits own victim refreshes into distance-2 hammers, while AQUA/SRS/"
        "\nBlockhammer never let any row cross T_RH -- with any mapping."
    )


if __name__ == "__main__":
    main()
