#!/usr/bin/env python3
"""Threshold sweep: how mitigation costs explode as T_RH falls.

Sweeps the Rowhammer threshold from 1K down to 64 for the three secure
mitigations on the baseline mapping and on Rubix-S, printing the
Figure-3 / Figure-14 trend plus the hot-row populations driving it.
Includes T_RH=64, one step beyond the paper, to show the trend continues.

Run:  python examples/threshold_sweep.py
"""

from repro import CoffeeLakeMapping, RubixSMapping, Simulator, baseline_config, spec_trace

WORKLOADS = ["blender", "lbm", "gcc", "mcf", "roms", "xz"]
THRESHOLDS = [1024, 512, 256, 128, 64]
SCALE = 0.1


def main() -> None:
    config = baseline_config()
    simulator = Simulator(config)
    traces = {name: spec_trace(name, scale=SCALE) for name in WORKLOADS}
    coffee = CoffeeLakeMapping(config)
    rubix = {
        "aqua": RubixSMapping(config, gang_size=4),
        "srs": RubixSMapping(config, gang_size=4),
        "blockhammer": RubixSMapping(config, gang_size=1),
    }

    stats, _ = simulator.window_stats(next(iter(traces.values())), coffee)
    print(f"sweeping T_RH over {THRESHOLDS} for {len(WORKLOADS)} workloads\n")
    header = f"{'scheme':<12s}" + "".join(f"{t:>10d}" for t in THRESHOLDS)
    print("average slowdown (%), Coffee Lake mapping")
    print(header)
    for scheme in ("aqua", "srs", "blockhammer"):
        cells = []
        for t_rh in THRESHOLDS:
            slowdowns = [
                simulator.run(trace, coffee, scheme=scheme, t_rh=t_rh).slowdown_pct
                for trace in traces.values()
            ]
            cells.append(sum(slowdowns) / len(slowdowns))
        print(f"{scheme:<12s}" + "".join(f"{c:>10.1f}" for c in cells))

    print("\naverage slowdown (%), Rubix-S mapping (best gang size per scheme)")
    print(header)
    for scheme in ("aqua", "srs", "blockhammer"):
        cells = []
        for t_rh in THRESHOLDS:
            slowdowns = [
                simulator.run(trace, rubix[scheme], scheme=scheme, t_rh=t_rh).slowdown_pct
                for trace in traces.values()
            ]
            cells.append(sum(slowdowns) / len(slowdowns))
        print(f"{scheme:<12s}" + "".join(f"{c:>10.1f}" for c in cells))

    print("\nhot rows (ACT-64+) driving the cost, summed over the workloads:")
    for label, mapping in (("coffee lake", coffee), ("rubix-s gs4", rubix["aqua"])):
        total = sum(
            simulator.window_stats(trace, mapping)[0].hot_rows(64)
            for trace in traces.values()
        )
        print(f"  {label:<14s} {total:>8d}")


if __name__ == "__main__":
    main()
