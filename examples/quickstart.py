#!/usr/bin/env python3
"""Quickstart: why secure Rowhammer mitigations need Rubix.

Runs one SPEC-like workload (gcc) on the Table-1 baseline system at the
ultra-low threshold T_RH=128 and compares each secure mitigation under
the stock Coffee Lake mapping vs Rubix-S -- the paper's headline result
in ~30 lines of API.

Run:  python examples/quickstart.py
"""

from repro import (
    CoffeeLakeMapping,
    RubixSMapping,
    Simulator,
    baseline_config,
    spec_trace,
)

T_RH = 128
WORKLOAD = "gcc"
SCALE = 0.2  # fraction of the 64 ms window footprint (keeps this quick)


def main() -> None:
    config = baseline_config()
    simulator = Simulator(config)
    trace = spec_trace(WORKLOAD, scale=SCALE)
    print(f"workload={WORKLOAD}  accesses={len(trace):,}  MPKI={trace.mpki:.2f}")

    coffee = CoffeeLakeMapping(config)
    stats, _ = simulator.window_stats(trace, coffee)
    print(
        f"\nCoffee Lake: {stats.hot_rows(64)} hot rows (ACT-64+), "
        f"row-buffer hit rate {stats.hit_rate:.0%}"
    )
    rubix = RubixSMapping(config, gang_size=4)
    rstats, _ = simulator.window_stats(trace, rubix)
    print(
        f"Rubix-S GS4: {rstats.hot_rows(64)} hot rows, "
        f"hit rate {rstats.hit_rate:.0%} "
        f"(cipher storage: {rubix.storage_bytes} bytes)"
    )

    print(f"\nSlowdown at T_RH={T_RH}:")
    print(f"{'mitigation':>12s} {'Coffee Lake':>12s} {'Rubix-S':>10s}")
    for scheme in ("aqua", "srs", "blockhammer"):
        gang = 1 if scheme == "blockhammer" else 4
        base = simulator.run(trace, coffee, scheme=scheme, t_rh=T_RH)
        best = simulator.run(
            trace, RubixSMapping(config, gang_size=gang), scheme=scheme, t_rh=T_RH
        )
        print(
            f"{scheme:>12s} {base.slowdown_pct:>11.1f}% {best.slowdown_pct:>9.1f}%"
            f"   ({base.mitigations:,} -> {best.mitigations:,} mitigations)"
        )


if __name__ == "__main__":
    main()
