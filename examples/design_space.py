#!/usr/bin/env python3
"""Design-space exploration with the campaign API.

Sweeps the full (mapping x scheme x threshold) grid over a few workloads
and prints a design-space table plus the configuration a deployment
would actually pick: the cheapest *secure* configuration at each
threshold.

Run:  python examples/design_space.py
"""

from collections import defaultdict

from repro.experiments.campaign import Campaign, MappingSpec

WORKLOADS = ["blender", "gcc", "mcf", "xz"]
MAPPINGS = [
    MappingSpec("coffeelake"),
    MappingSpec("rubix-s", gang_size=1),
    MappingSpec("rubix-s", gang_size=4),
    MappingSpec("rubix-d", gang_size=4),
]
SCHEMES = ["aqua", "srs", "blockhammer"]
THRESHOLDS = [1024, 256, 128]


def main() -> None:
    campaign = Campaign(
        workloads=WORKLOADS,
        mappings=MAPPINGS,
        schemes=SCHEMES,
        thresholds=THRESHOLDS,
        scale=0.1,
    )
    print(f"running {campaign.size()} configurations...")
    records = campaign.run()

    # Average slowdown per (mapping, scheme, threshold) across workloads.
    grid = defaultdict(list)
    for record in records:
        grid[(record["mapping"], record["scheme"], record["t_rh"])].append(
            record["slowdown_pct"]
        )
    averaged = {key: sum(v) / len(v) for key, v in grid.items()}

    print(f"\n{'mapping':<14s} {'scheme':<12s}" + "".join(f"{t:>10d}" for t in THRESHOLDS))
    for mapping in [spec.label for spec in MAPPINGS]:
        for scheme in SCHEMES:
            cells = "".join(
                f"{averaged[(mapping, scheme, t)]:>9.1f}%" for t in THRESHOLDS
            )
            print(f"{mapping:<14s} {scheme:<12s}{cells}")

    print("\ncheapest secure configuration per threshold:")
    for t_rh in THRESHOLDS:
        best = min(
            ((m, s) for m in [spec.label for spec in MAPPINGS] for s in SCHEMES),
            key=lambda pair: averaged[(pair[0], pair[1], t_rh)],
        )
        print(
            f"  T_RH={t_rh:>5d}: {best[0]} + {best[1]} "
            f"({averaged[(best[0], best[1], t_rh)]:.1f}% slowdown)"
        )
    print(
        "\nAt high thresholds the mapping barely matters; at T_RH=128 only"
        "\nthe Rubix configurations stay deployable."
    )


if __name__ == "__main__":
    main()
